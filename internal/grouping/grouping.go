// Package grouping builds the table groups that AETS replays and commits
// independently (paper §III-C component ③). Tables accessed by real-time
// OLAP queries (non-zero predicted access rate) are *hot*; hot tables with
// similar rates are clustered into one group with DBSCAN, while every cold
// table gets its own group so its replay cannot delay any hot group.
package grouping

import (
	"fmt"
	"sort"

	"aets/internal/wal"
)

// Group is one table group: the unit of dispatch, parallel replay, commit
// ordering and visibility.
type Group struct {
	ID     int
	Tables []wal.TableID
	Hot    bool
	// Rate is the group's predicted table access rate: the sum of the
	// member tables' rates (queries per slot touching the group).
	Rate float64
}

// Plan maps every table to its group for one epoch.
type Plan struct {
	Groups []Group
	byID   map[wal.TableID]int
	// dense is a direct-indexed fast path for GroupOf: dispatch performs
	// one lookup per log entry, and a map probe there is the difference
	// between a ~1% and a ~10% dispatch share in the Table II breakdown.
	// dense[t] is groupID+1, 0 meaning absent.
	dense []int32
}

// maxDenseTableID bounds the direct-index table. Benchmarks use small IDs;
// plans over sparser ID spaces fall back to the map.
const maxDenseTableID = 4096

// GroupOf returns the group index for a table; ok is false when the table
// is not covered by the plan.
func (p *Plan) GroupOf(t wal.TableID) (int, bool) {
	if int(t) < len(p.dense) {
		g := p.dense[t]
		return int(g) - 1, g != 0
	}
	g, ok := p.byID[t]
	return g, ok
}

// buildDense populates the direct-index lookup after byID is final.
func (p *Plan) buildDense() {
	max := wal.TableID(0)
	for t := range p.byID {
		if t > max {
			max = t
		}
	}
	if max >= maxDenseTableID {
		return
	}
	p.dense = make([]int32, max+1)
	for t, g := range p.byID {
		p.dense[t] = int32(g) + 1
	}
}

// HotGroups returns the indices of hot groups.
func (p *Plan) HotGroups() []int {
	var out []int
	for i := range p.Groups {
		if p.Groups[i].Hot {
			out = append(out, i)
		}
	}
	return out
}

// ColdGroups returns the indices of cold groups.
func (p *Plan) ColdGroups() []int {
	var out []int
	for i := range p.Groups {
		if !p.Groups[i].Hot {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks that every table belongs to exactly one group and group
// rates are consistent with membership.
func (p *Plan) Validate() error {
	seen := make(map[wal.TableID]int)
	for gi, g := range p.Groups {
		for _, t := range g.Tables {
			if prev, dup := seen[t]; dup {
				return fmt.Errorf("grouping: table %d in both group %d and %d", t, prev, gi)
			}
			seen[t] = gi
			if got := p.byID[t]; got != gi {
				return fmt.Errorf("grouping: index maps table %d to group %d, membership says %d", t, got, gi)
			}
		}
	}
	if len(seen) != len(p.byID) {
		return fmt.Errorf("grouping: index has %d tables, groups carry %d", len(p.byID), len(seen))
	}
	return nil
}

// Options controls plan construction.
type Options struct {
	// Eps is the DBSCAN neighbourhood radius in *relative* rate space: two
	// hot tables are neighbours when |r1-r2| ≤ Eps·max(r1,r2). 0 means 0.25.
	Eps float64
	// MinPts is DBSCAN's core-point threshold. 0 means 2.
	MinPts int
	// PerTable forces one group per hot table, bypassing DBSCAN — the mode
	// the paper uses for TPC-C and CH-benCHmark where the table count is
	// small.
	PerTable bool
}

// Build constructs a Plan from predicted per-table access rates. Tables
// with rate > 0 are hot; all tables in `all` that are not rated hot become
// singleton cold groups. Group IDs are dense and deterministic: hot groups
// first in descending rate, then cold groups in ascending table ID.
func Build(rates map[wal.TableID]float64, all []wal.TableID, opts Options) *Plan {
	if opts.Eps == 0 {
		opts.Eps = 0.25
	}
	if opts.MinPts == 0 {
		opts.MinPts = 2
	}

	hotIDs := make([]wal.TableID, 0, len(rates))
	for t, r := range rates {
		if r > 0 {
			hotIDs = append(hotIDs, t)
		}
	}
	sort.Slice(hotIDs, func(i, j int) bool {
		if rates[hotIDs[i]] != rates[hotIDs[j]] {
			return rates[hotIDs[i]] > rates[hotIDs[j]]
		}
		return hotIDs[i] < hotIDs[j]
	})

	p := &Plan{byID: make(map[wal.TableID]int)}
	addGroup := func(tables []wal.TableID, hot bool) {
		g := Group{ID: len(p.Groups), Tables: tables, Hot: hot}
		for _, t := range tables {
			g.Rate += rates[t]
			p.byID[t] = g.ID
		}
		p.Groups = append(p.Groups, g)
	}

	if opts.PerTable || len(hotIDs) <= opts.MinPts {
		for _, t := range hotIDs {
			addGroup([]wal.TableID{t}, true)
		}
	} else {
		pts := make([]float64, len(hotIDs))
		for i, t := range hotIDs {
			pts[i] = rates[t]
		}
		labels := DBSCAN1D(pts, opts.Eps, opts.MinPts)
		clusters := make(map[int][]wal.TableID)
		var order []int
		for i, lbl := range labels {
			if lbl == Noise {
				// Noise points become singleton hot groups.
				addGroup([]wal.TableID{hotIDs[i]}, true)
				continue
			}
			if _, ok := clusters[lbl]; !ok {
				order = append(order, lbl)
			}
			clusters[lbl] = append(clusters[lbl], hotIDs[i])
		}
		for _, lbl := range order {
			addGroup(clusters[lbl], true)
		}
	}

	cold := make([]wal.TableID, 0, len(all))
	for _, t := range all {
		if _, isHot := p.byID[t]; !isHot {
			cold = append(cold, t)
		}
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	for _, t := range cold {
		addGroup([]wal.TableID{t}, false)
	}
	p.buildDense()
	return p
}

// SingleGroup returns a plan with every table in one hot group — the
// configuration of the ungrouped TPLR baseline.
func SingleGroup(all []wal.TableID) *Plan {
	p := &Plan{byID: make(map[wal.TableID]int, len(all))}
	tables := append([]wal.TableID(nil), all...)
	sort.Slice(tables, func(i, j int) bool { return tables[i] < tables[j] })
	for _, t := range tables {
		p.byID[t] = 0
	}
	p.Groups = []Group{{ID: 0, Tables: tables, Hot: true}}
	p.buildDense()
	return p
}
