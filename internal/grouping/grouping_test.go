package grouping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aets/internal/wal"
)

func TestBuildPerTable(t *testing.T) {
	all := []wal.TableID{1, 2, 3, 4, 5}
	rates := map[wal.TableID]float64{2: 100, 4: 50}
	p := Build(rates, all, Options{PerTable: true})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 5 {
		t.Fatalf("got %d groups, want 5", len(p.Groups))
	}
	hot := p.HotGroups()
	cold := p.ColdGroups()
	if len(hot) != 2 || len(cold) != 3 {
		t.Fatalf("hot=%d cold=%d", len(hot), len(cold))
	}
	// Hot groups sorted by descending rate: table 2 first.
	if p.Groups[hot[0]].Tables[0] != 2 || p.Groups[hot[0]].Rate != 100 {
		t.Fatalf("first hot group: %+v", p.Groups[hot[0]])
	}
	// Every table maps to a group containing it.
	for _, id := range all {
		gi, ok := p.GroupOf(id)
		if !ok {
			t.Fatalf("table %d unmapped", id)
		}
		found := false
		for _, m := range p.Groups[gi].Tables {
			if m == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("table %d maps to group %d that does not contain it", id, gi)
		}
	}
}

func TestBuildClustersSimilarRates(t *testing.T) {
	all := []wal.TableID{1, 2, 3, 4, 5, 6, 7}
	rates := map[wal.TableID]float64{
		1: 1000, 2: 1050, 3: 980, // cluster A
		4: 100, 5: 95, // cluster B
		6: 5, // outlier → singleton
	}
	p := Build(rates, all, Options{Eps: 0.2, MinPts: 2})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g1, _ := p.GroupOf(1)
	g2, _ := p.GroupOf(2)
	g3, _ := p.GroupOf(3)
	if g1 != g2 || g2 != g3 {
		t.Fatalf("rates 1000/1050/980 should cluster: groups %d %d %d", g1, g2, g3)
	}
	g4, _ := p.GroupOf(4)
	g5, _ := p.GroupOf(5)
	if g4 != g5 {
		t.Fatalf("rates 100/95 should cluster: groups %d %d", g4, g5)
	}
	if g1 == g4 {
		t.Fatal("clusters A and B must differ")
	}
	g6, _ := p.GroupOf(6)
	if g6 == g1 || g6 == g4 {
		t.Fatal("outlier must be its own group")
	}
	g7, _ := p.GroupOf(7)
	if p.Groups[g7].Hot {
		t.Fatal("unrated table must be cold")
	}
}

func TestSingleGroup(t *testing.T) {
	p := SingleGroup([]wal.TableID{3, 1, 2})
	if len(p.Groups) != 1 || !p.Groups[0].Hot {
		t.Fatalf("plan: %+v", p.Groups)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range []wal.TableID{1, 2, 3} {
		if gi, ok := p.GroupOf(id); !ok || gi != 0 {
			t.Fatalf("table %d → group %d, %v", id, gi, ok)
		}
	}
}

func TestBuildCoversAllTablesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		all := make([]wal.TableID, n)
		rates := make(map[wal.TableID]float64)
		for i := range all {
			all[i] = wal.TableID(i + 1)
			if r.Intn(3) == 0 {
				rates[all[i]] = r.Float64() * 1e4
			}
		}
		p := Build(rates, all, Options{})
		if p.Validate() != nil {
			return false
		}
		covered := 0
		for _, g := range p.Groups {
			covered += len(g.Tables)
		}
		if covered != n {
			return false
		}
		// Cold groups are singletons; hot groups carry only rated tables.
		for _, g := range p.Groups {
			if !g.Hot && len(g.Tables) != 1 {
				return false
			}
			if g.Hot {
				for _, id := range g.Tables {
					if rates[id] <= 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDBSCAN1D(t *testing.T) {
	pts := []float64{1000, 1020, 990, 100, 102, 7}
	labels := DBSCAN1D(pts, 0.1, 2)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("big cluster split: %v", labels)
	}
	if labels[3] != labels[4] {
		t.Fatalf("small cluster split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("clusters merged: %v", labels)
	}
	if labels[5] != Noise {
		t.Fatalf("outlier not noise: %v", labels)
	}
	// Hottest cluster gets label 0.
	if labels[0] != 0 {
		t.Fatalf("hottest cluster label = %d, want 0", labels[0])
	}
}

func TestDBSCAN1DEmptyAndSingleton(t *testing.T) {
	if got := DBSCAN1D(nil, 0.1, 2); len(got) != 0 {
		t.Fatal("empty input must yield empty labels")
	}
	if got := DBSCAN1D([]float64{5}, 0.1, 2); got[0] != Noise {
		t.Fatal("single point below MinPts must be noise")
	}
	if got := DBSCAN1D([]float64{5}, 0.1, 1); got[0] != 0 {
		t.Fatal("single point with MinPts=1 must form a cluster")
	}
}
