package grouping

import "sort"

// Noise is the DBSCAN label of points belonging to no cluster.
const Noise = -1

// DBSCAN1D clusters one-dimensional points (table access rates) with a
// relative epsilon: points a and b are neighbours when
// |a-b| ≤ eps·max(|a|,|b|). It returns a label per input point, Noise for
// outliers. Labels are dense, starting at 0, ordered by descending cluster
// rate so label 0 is the hottest cluster.
//
// The 1-D specialisation sorts the points and uses window scans instead of
// pairwise distance queries, making it O(n log n).
func DBSCAN1D(points []float64, eps float64, minPts int) []int {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	if n == 0 {
		return labels
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return points[idx[a]] > points[idx[b]] })

	neighbours := func(si int) []int {
		p := points[idx[si]]
		var out []int
		for sj := si; sj >= 0; sj-- {
			if !within(p, points[idx[sj]], eps) {
				break
			}
			out = append(out, sj)
		}
		for sj := si + 1; sj < n; sj++ {
			if !within(p, points[idx[sj]], eps) {
				break
			}
			out = append(out, sj)
		}
		return out
	}

	next := 0
	for si := 0; si < n; si++ {
		i := idx[si]
		if labels[i] != Noise {
			continue
		}
		nb := neighbours(si)
		if len(nb) < minPts {
			continue // stays noise unless later absorbed as a border point
		}
		cluster := next
		next++
		labels[i] = cluster
		queue := nb
		for len(queue) > 0 {
			sj := queue[0]
			queue = queue[1:]
			j := idx[sj]
			if labels[j] != Noise {
				continue
			}
			labels[j] = cluster
			if nb2 := neighbours(sj); len(nb2) >= minPts {
				queue = append(queue, nb2...)
			}
		}
	}
	return labels
}

func within(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 0 {
		m = -m
	}
	return d <= eps*m
}
