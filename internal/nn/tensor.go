// Package nn is a minimal reverse-mode automatic differentiation library
// with exactly the operators DTGM and its baselines need: channel-mixing
// linear maps, causal dilated 1-D convolutions, graph propagation, gating
// nonlinearities, LSTM cells and an Adam optimiser. It is written against
// the stdlib only and sized for the paper's small models (N=14 tables,
// hidden dimension ≤ 96).
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense float64 tensor participating in an autograd graph.
// Tensors produced by operators record a backward closure; calling Backward
// on a scalar loss propagates gradients to every parameter that requires
// them.
type Tensor struct {
	Data  []float64
	Shape []int
	Grad  []float64

	requiresGrad bool
	back         func()
	parents      []*Tensor
}

// NewTensor wraps data (not copied) with the given shape.
func NewTensor(data []float64, shape ...int) *Tensor {
	if len(data) != numel(shape) {
		panic(fmt.Sprintf("nn: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Zeros returns a zero tensor of the given shape.
func Zeros(shape ...int) *Tensor {
	return NewTensor(make([]float64, numel(shape)), shape...)
}

// Randn returns a tensor with N(0, scale²) entries — parameter init.
func Randn(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := Zeros(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	return t
}

// Param marks the tensor as a trainable parameter.
func Param(t *Tensor) *Tensor {
	t.requiresGrad = true
	t.Grad = make([]float64, len(t.Data))
	return t
}

// Numel returns the number of elements.
func (t *Tensor) Numel() int { return len(t.Data) }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("nn: %d indices into rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("nn: index %d out of bounds for dim %d (size %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// result builds an operator output tensor that needs gradients when any
// parent does.
func result(data []float64, shape []int, parents ...*Tensor) *Tensor {
	out := &Tensor{Data: data, Shape: append([]int(nil), shape...), parents: parents}
	for _, p := range parents {
		if p.requiresGrad {
			out.requiresGrad = true
			break
		}
	}
	if out.requiresGrad {
		out.Grad = make([]float64, len(data))
	}
	return out
}

// Backward runs reverse-mode differentiation from t, which must be a
// scalar. Gradients accumulate into every reachable parameter's Grad.
func (t *Tensor) Backward() {
	if len(t.Data) != 1 {
		panic("nn: Backward requires a scalar")
	}
	if !t.requiresGrad {
		return
	}
	order := topoSort(t)
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].back != nil {
			order[i].back()
		}
	}
}

func topoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	seen := make(map[*Tensor]bool)
	var visit func(*Tensor)
	visit = func(n *Tensor) {
		if seen[n] || !n.requiresGrad {
			return
		}
		seen[n] = true
		for _, p := range n.parents {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

func numel(shape []int) int {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("nn: invalid dimension %d", s))
		}
		n *= s
	}
	return n
}

// sameShape panics unless a and b have identical shapes.
func sameShape(op string, a, b *Tensor) {
	if len(a.Shape) != len(b.Shape) {
		panic(fmt.Sprintf("nn: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("nn: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
		}
	}
}

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

// Clone returns a detached copy of the tensor's data.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.Data))
	copy(d, t.Data)
	return NewTensor(d, t.Shape...)
}

// L2 returns the Euclidean norm of the data — handy in tests.
func (t *Tensor) L2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
