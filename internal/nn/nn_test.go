package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numGrad computes a numerical gradient of loss() w.r.t. p via central
// differences and compares it to p.Grad filled by Backward.
func checkGrad(t *testing.T, name string, p *Tensor, loss func() *Tensor) {
	t.Helper()
	l := loss()
	l.Backward()
	analytic := append([]float64(nil), p.Grad...)
	const h = 1e-5
	for i := range p.Data {
		orig := p.Data[i]
		p.Data[i] = orig + h
		lp := loss().Data[0]
		p.Data[i] = orig - h
		lm := loss().Data[0]
		p.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if diff := math.Abs(num - analytic[i]); diff > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("%s: grad[%d] analytic %.8f vs numeric %.8f", name, i, analytic[i], num)
		}
	}
	// Reset accumulated grads for the next check.
	p.ZeroGrad()
}

func TestMatMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Param(Randn(rng, 1, 3, 4))
	b := Param(Randn(rng, 1, 4, 2))
	target := Randn(rng, 1, 3, 2)
	loss := func() *Tensor { return MSE(MatMul(a, b), target) }
	checkGrad(t, "matmul/a", a, loss)
	b.ZeroGrad()
	checkGrad(t, "matmul/b", b, loss)
}

func TestElementwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := Param(Randn(rng, 1, 2, 5))
	target := Randn(rng, 1, 2, 5)
	for name, f := range map[string]func(*Tensor) *Tensor{
		"tanh":    Tanh,
		"sigmoid": Sigmoid,
		"relu":    ReLU,
		"scale":   func(a *Tensor) *Tensor { return Scale(a, 1.7) },
	} {
		loss := func() *Tensor { return MSE(f(x), target) }
		checkGrad(t, name, x, loss)
	}
}

func TestAddMulGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Param(Randn(rng, 1, 6))
	b := Param(Randn(rng, 1, 6))
	target := Randn(rng, 1, 6)
	loss := func() *Tensor { return MSE(Mul(Add(a, b), b), target) }
	checkGrad(t, "addmul/a", a, loss)
	b.ZeroGrad()
	a.ZeroGrad()
	checkGrad(t, "addmul/b", b, loss)
}

func TestMAEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Param(Randn(rng, 1, 8))
	target := Randn(rng, 1, 8)
	checkGrad(t, "mae", x, func() *Tensor { return MAE(x, target) })
}

func TestChannelLinearGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewChannelLinear(rng, 3, 2)
	x := Param(Randn(rng, 1, 4, 3, 5)) // [N=4, C=3, T=5]
	x.Shape = []int{4, 3, 5}
	target := Randn(rng, 1, 4*2*5)
	target.Shape = []int{4, 2, 5}
	loss := func() *Tensor { return MSE(l.Apply(x), target) }
	checkGrad(t, "chanlin/W", l.W, loss)
	l.B.ZeroGrad()
	l.W.ZeroGrad()
	x.ZeroGrad()
	checkGrad(t, "chanlin/B", l.B, loss)
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	x.ZeroGrad()
	checkGrad(t, "chanlin/x", x, loss)
}

func TestCausalConvGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewCausalConv1D(rng, 2, 3, 2, 2)
	x := Param(Randn(rng, 1, 2*2*7))
	x.Shape = []int{2, 2, 7}
	target := Randn(rng, 1, 2*3*7)
	target.Shape = []int{2, 3, 7}
	loss := func() *Tensor { return MSE(l.Apply(x), target) }
	checkGrad(t, "conv/W", l.W, loss)
	l.B.ZeroGrad()
	l.W.ZeroGrad()
	x.ZeroGrad()
	checkGrad(t, "conv/B", l.B, loss)
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	x.ZeroGrad()
	checkGrad(t, "conv/x", x, loss)
}

func TestCausalConvIsCausal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewCausalConv1D(rng, 1, 1, 2, 1)
	x := Zeros(1, 1, 6)
	base := l.Apply(x).Clone()
	// Perturbing the future must not change earlier outputs.
	x.Data[5] = 10
	pert := l.Apply(x)
	for t0 := 0; t0 < 5; t0++ {
		if pert.Data[t0] != base.Data[t0] {
			t.Fatalf("output at t=%d changed by a future input", t0)
		}
	}
}

func TestGraphPropGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	adj := [][]float64{{0.5, 0.5, 0}, {0.3, 0.4, 0.3}, {0, 0.6, 0.4}}
	x := Param(Randn(rng, 1, 3*2*4))
	x.Shape = []int{3, 2, 4}
	target := Randn(rng, 1, 3*2*4)
	target.Shape = []int{3, 2, 4}
	checkGrad(t, "graphprop", x, func() *Tensor { return MSE(GraphProp(x, adj), target) })
}

func TestSliceOpsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := Param(Randn(rng, 1, 3, 5))
	target := Randn(rng, 1, 3)
	checkGrad(t, "slicelast", x, func() *Tensor { return MSE(SliceLast(x, -1), target) })
	target2 := Randn(rng, 1, 3, 2)
	checkGrad(t, "slicecols", x, func() *Tensor { return MSE(SliceCols(x, 1, 3), target2) })
}

func TestConcatGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := Param(Randn(rng, 1, 2, 3))
	b := Param(Randn(rng, 1, 2, 2))
	target := Randn(rng, 1, 2, 5)
	loss := func() *Tensor { return MSE(Concat(a, b), target) }
	checkGrad(t, "concat/a", a, loss)
	b.ZeroGrad()
	a.ZeroGrad()
	checkGrad(t, "concat/b", b, loss)
}

func TestLSTMCellGradientAndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cell := NewLSTMCell(rng, 3, 4)
	x := Randn(rng, 1, 2, 3)
	target := Randn(rng, 1, 2, 4)
	loss := func() *Tensor {
		h, c := Zeros(2, 4), Zeros(2, 4)
		h, _ = cell.Step(x, h, c)
		return MSE(h, target)
	}
	checkGrad(t, "lstm/Wx", cell.Wx, loss)
	for _, p := range cell.Params() {
		p.ZeroGrad()
	}
	checkGrad(t, "lstm/B", cell.B, loss)
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Fit y = 2x + 1 with a linear layer.
	l := NewLinear(rng, 1, 1)
	opt := NewAdam(append([]*Tensor{}, l.Params()...), 0.05)
	xs := make([]float64, 32)
	ys := make([]float64, 32)
	for i := range xs {
		xs[i] = rng.Float64()*4 - 2
		ys[i] = 2*xs[i] + 1
	}
	x := NewTensor(xs, 32, 1)
	y := NewTensor(ys, 32, 1)
	first := MSE(l.Apply(x), y).Data[0]
	for it := 0; it < 300; it++ {
		loss := MSE(l.Apply(x), y)
		loss.Backward()
		opt.Step()
	}
	last := MSE(l.Apply(x), y).Data[0]
	if last > first/100 {
		t.Fatalf("Adam failed to fit: first %.4f last %.4f", first, last)
	}
	if math.Abs(l.W.Data[0]-2) > 0.1 || math.Abs(l.B.Data[0]-1) > 0.1 {
		t.Fatalf("fit parameters W=%.3f B=%.3f, want 2 and 1", l.W.Data[0], l.B.Data[0])
	}
}

func TestDropoutTrainAndEval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := NewTensor([]float64{1, 1, 1, 1, 1, 1, 1, 1}, 8)
	if out := Dropout(x, 0.5, nil); out != x {
		t.Fatal("inference dropout must be the identity")
	}
	out := Dropout(x, 0.5, rng)
	zeros := 0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(v-2) > 1e-12 {
			t.Fatalf("survivor not scaled: %v", v)
		}
	}
	if zeros == 0 || zeros == len(out.Data) {
		t.Logf("degenerate dropout draw (%d zeros), acceptable but unusual", zeros)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on a non-scalar must panic")
		}
	}()
	x := Param(Zeros(2, 2))
	Add(x, x).Backward()
}
