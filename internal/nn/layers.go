package nn

import "math/rand"

// Layers operate on [N, C, T] tensors: N parallel node series (tables), C
// channels, T timesteps. Parameters are shared across nodes, matching the
// Graph-WaveNet-style architecture DTGM follows (paper Fig 5).

// ChannelLinear is a 1×1 convolution: a linear map over the channel
// dimension applied at every (node, timestep).
type ChannelLinear struct {
	W *Tensor // [Cin, Cout]
	B *Tensor // [Cout]
}

// NewChannelLinear initialises a channel linear layer.
func NewChannelLinear(rng *rand.Rand, cin, cout int) *ChannelLinear {
	scale := 1.0 / float64(cin)
	return &ChannelLinear{
		W: Param(Randn(rng, scale, cin, cout)),
		B: Param(Zeros(cout)),
	}
}

// Params returns the trainable parameters.
func (l *ChannelLinear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Apply maps [N, Cin, T] → [N, Cout, T].
func (l *ChannelLinear) Apply(x *Tensor) *Tensor {
	n, cin, t := x.Shape[0], x.Shape[1], x.Shape[2]
	if cin != l.W.Shape[0] {
		panic("nn: ChannelLinear input channel mismatch")
	}
	cout := l.W.Shape[1]
	data := make([]float64, n*cout*t)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < cin; ci++ {
			xr := x.Data[(ni*cin+ci)*t : (ni*cin+ci+1)*t]
			for co := 0; co < cout; co++ {
				w := l.W.Data[ci*cout+co]
				if w == 0 {
					continue
				}
				or := data[(ni*cout+co)*t : (ni*cout+co+1)*t]
				for ti := 0; ti < t; ti++ {
					or[ti] += w * xr[ti]
				}
			}
		}
		for co := 0; co < cout; co++ {
			b := l.B.Data[co]
			or := data[(ni*cout+co)*t : (ni*cout+co+1)*t]
			for ti := 0; ti < t; ti++ {
				or[ti] += b
			}
		}
	}
	out := result(data, []int{n, cout, t}, x, l.W, l.B)
	if out.requiresGrad {
		out.back = func() {
			for ni := 0; ni < n; ni++ {
				for co := 0; co < cout; co++ {
					gr := out.Grad[(ni*cout+co)*t : (ni*cout+co+1)*t]
					if l.B.requiresGrad {
						s := 0.0
						for ti := 0; ti < t; ti++ {
							s += gr[ti]
						}
						l.B.Grad[co] += s
					}
					for ci := 0; ci < cin; ci++ {
						xr := x.Data[(ni*cin+ci)*t : (ni*cin+ci+1)*t]
						if l.W.requiresGrad {
							s := 0.0
							for ti := 0; ti < t; ti++ {
								s += gr[ti] * xr[ti]
							}
							l.W.Grad[ci*cout+co] += s
						}
						if x.requiresGrad {
							w := l.W.Data[ci*cout+co]
							xg := x.Grad[(ni*cin+ci)*t : (ni*cin+ci+1)*t]
							for ti := 0; ti < t; ti++ {
								xg[ti] += gr[ti] * w
							}
						}
					}
				}
			}
		}
	}
	return out
}

// CausalConv1D is a dilated causal convolution along the time dimension,
// shared across nodes.
type CausalConv1D struct {
	W        *Tensor // [Cout, Cin, K]
	B        *Tensor // [Cout]
	Dilation int
}

// NewCausalConv1D initialises a causal convolution layer.
func NewCausalConv1D(rng *rand.Rand, cin, cout, k, dilation int) *CausalConv1D {
	scale := 1.0 / float64(cin*k)
	return &CausalConv1D{
		W:        Param(Randn(rng, scale, cout, cin, k)),
		B:        Param(Zeros(cout)),
		Dilation: dilation,
	}
}

// Params returns the trainable parameters.
func (l *CausalConv1D) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Apply maps [N, Cin, T] → [N, Cout, T]; positions before the window start
// see implicit zero padding (causal).
func (l *CausalConv1D) Apply(x *Tensor) *Tensor {
	n, cin, t := x.Shape[0], x.Shape[1], x.Shape[2]
	cout, k, d := l.W.Shape[0], l.W.Shape[2], l.Dilation
	if cin != l.W.Shape[1] {
		panic("nn: CausalConv1D input channel mismatch")
	}
	data := make([]float64, n*cout*t)
	for ni := 0; ni < n; ni++ {
		for co := 0; co < cout; co++ {
			or := data[(ni*cout+co)*t : (ni*cout+co+1)*t]
			b := l.B.Data[co]
			for ti := 0; ti < t; ti++ {
				or[ti] = b
			}
			for ci := 0; ci < cin; ci++ {
				xr := x.Data[(ni*cin+ci)*t : (ni*cin+ci+1)*t]
				for ki := 0; ki < k; ki++ {
					w := l.W.Data[(co*cin+ci)*k+ki]
					if w == 0 {
						continue
					}
					shift := ki * d
					for ti := shift; ti < t; ti++ {
						or[ti] += w * xr[ti-shift]
					}
				}
			}
		}
	}
	out := result(data, []int{n, cout, t}, x, l.W, l.B)
	if out.requiresGrad {
		out.back = func() {
			for ni := 0; ni < n; ni++ {
				for co := 0; co < cout; co++ {
					gr := out.Grad[(ni*cout+co)*t : (ni*cout+co+1)*t]
					if l.B.requiresGrad {
						s := 0.0
						for ti := 0; ti < t; ti++ {
							s += gr[ti]
						}
						l.B.Grad[co] += s
					}
					for ci := 0; ci < cin; ci++ {
						xr := x.Data[(ni*cin+ci)*t : (ni*cin+ci+1)*t]
						for ki := 0; ki < k; ki++ {
							shift := ki * d
							if l.W.requiresGrad {
								s := 0.0
								for ti := shift; ti < t; ti++ {
									s += gr[ti] * xr[ti-shift]
								}
								l.W.Grad[(co*cin+ci)*k+ki] += s
							}
							if x.requiresGrad {
								w := l.W.Data[(co*cin+ci)*k+ki]
								xg := x.Grad[(ni*cin+ci)*t : (ni*cin+ci+1)*t]
								for ti := shift; ti < t; ti++ {
									xg[ti-shift] += gr[ti] * w
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// GraphProp propagates features over the (fixed) table-access graph:
// out[n] = Σ_m A[n,m]·x[m]. A is row-normalised outside. When x stacks B
// graphs (Shape[0] = B·len(adj)), propagation is applied block-diagonally,
// which is how training batches several windows in one pass.
func GraphProp(x *Tensor, adj [][]float64) *Tensor {
	n, c, t := x.Shape[0], x.Shape[1], x.Shape[2]
	nb := len(adj)
	if nb == 0 || n%nb != 0 {
		panic("nn: GraphProp adjacency size mismatch")
	}
	blocks := n / nb
	data := make([]float64, len(x.Data))
	ct := c * t
	for b := 0; b < blocks; b++ {
		base := b * nb
		for ni := 0; ni < nb; ni++ {
			or := data[(base+ni)*ct : (base+ni+1)*ct]
			for mi := 0; mi < nb; mi++ {
				a := adj[ni][mi]
				if a == 0 {
					continue
				}
				xr := x.Data[(base+mi)*ct : (base+mi+1)*ct]
				for i := 0; i < ct; i++ {
					or[i] += a * xr[i]
				}
			}
		}
	}
	out := result(data, x.Shape, x)
	if out.requiresGrad {
		out.back = func() {
			for b := 0; b < blocks; b++ {
				base := b * nb
				for ni := 0; ni < nb; ni++ {
					gr := out.Grad[(base+ni)*ct : (base+ni+1)*ct]
					for mi := 0; mi < nb; mi++ {
						a := adj[ni][mi]
						if a == 0 {
							continue
						}
						xg := x.Grad[(base+mi)*ct : (base+mi+1)*ct]
						for i := 0; i < ct; i++ {
							xg[i] += a * gr[i]
						}
					}
				}
			}
		}
	}
	return out
}

// Linear is a dense layer over 2-D inputs [rows, in] → [rows, out].
type Linear struct {
	W *Tensor // [in, out]
	B *Tensor // [out]
}

// NewLinear initialises a dense layer.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{
		W: Param(Randn(rng, 1.0/float64(in), in, out)),
		B: Param(Zeros(out)),
	}
}

// Params returns the trainable parameters.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// Apply computes x·W + B.
func (l *Linear) Apply(x *Tensor) *Tensor {
	return AddBias(MatMul(x, l.W), l.B)
}

// SliceCols returns a[:, from:to] of a 2-D tensor.
func SliceCols(a *Tensor, from, to int) *Tensor {
	if len(a.Shape) != 2 {
		panic("nn: SliceCols needs a 2-D tensor")
	}
	rows, cols := a.Shape[0], a.Shape[1]
	w := to - from
	data := make([]float64, rows*w)
	for r := 0; r < rows; r++ {
		copy(data[r*w:], a.Data[r*cols+from:r*cols+to])
	}
	out := result(data, []int{rows, w}, a)
	if out.requiresGrad {
		out.back = func() {
			for r := 0; r < rows; r++ {
				for i := 0; i < w; i++ {
					a.Grad[r*cols+from+i] += out.Grad[r*w+i]
				}
			}
		}
	}
	return out
}

// LSTMCell is a standard LSTM cell used by the QB5000 baseline.
type LSTMCell struct {
	Wx *Tensor // [in, 4H]
	Wh *Tensor // [H, 4H]
	B  *Tensor // [4H]
	H  int
}

// NewLSTMCell initialises an LSTM cell.
func NewLSTMCell(rng *rand.Rand, in, h int) *LSTMCell {
	c := &LSTMCell{
		Wx: Param(Randn(rng, 1.0/float64(in), in, 4*h)),
		Wh: Param(Randn(rng, 1.0/float64(h), h, 4*h)),
		B:  Param(Zeros(4 * h)),
		H:  h,
	}
	// Forget-gate bias starts at 1 (standard trick for gradient flow).
	for i := h; i < 2*h; i++ {
		c.B.Data[i] = 1
	}
	return c
}

// Params returns the trainable parameters.
func (c *LSTMCell) Params() []*Tensor { return []*Tensor{c.Wx, c.Wh, c.B} }

// Step advances the cell one timestep: x [rows,in], h,cell [rows,H].
func (c *LSTMCell) Step(x, h, cell *Tensor) (hNext, cellNext *Tensor) {
	gates := AddBias(Add(MatMul(x, c.Wx), MatMul(h, c.Wh)), c.B)
	hd := c.H
	i := Sigmoid(SliceCols(gates, 0, hd))
	f := Sigmoid(SliceCols(gates, hd, 2*hd))
	g := Tanh(SliceCols(gates, 2*hd, 3*hd))
	o := Sigmoid(SliceCols(gates, 3*hd, 4*hd))
	cellNext = Add(Mul(f, cell), Mul(i, g))
	hNext = Mul(o, Tanh(cellNext))
	return hNext, cellNext
}
