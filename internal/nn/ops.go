package nn

import "math"

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	sameShape("Add", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + b.Data[i]
	}
	out := result(data, a.Shape, a, b)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if b.requiresGrad {
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Mul returns the Hadamard product a ⊙ b (same shape) — the TCN gate.
func Mul(a, b *Tensor) *Tensor {
	sameShape("Mul", a, b)
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * b.Data[i]
	}
	out := result(data, a.Shape, a, b)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i] * b.Data[i]
				}
			}
			if b.requiresGrad {
				for i := range out.Grad {
					b.Grad[i] += out.Grad[i] * a.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns a * k.
func Scale(a *Tensor, k float64) *Tensor {
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] * k
	}
	out := result(data, a.Shape, a)
	if out.requiresGrad {
		out.back = func() {
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * k
			}
		}
	}
	return out
}

// Tanh applies tanh element-wise.
func Tanh(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = math.Tanh(a.Data[i])
	}
	out := result(data, a.Shape, a)
	if out.requiresGrad {
		out.back = func() {
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * (1 - data[i]*data[i])
			}
		}
	}
	return out
}

// Sigmoid applies the logistic function element-wise.
func Sigmoid(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = 1 / (1 + math.Exp(-a.Data[i]))
	}
	out := result(data, a.Shape, a)
	if out.requiresGrad {
		out.back = func() {
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * data[i] * (1 - data[i])
			}
		}
	}
	return out
}

// ReLU applies max(0, x) element-wise.
func ReLU(a *Tensor) *Tensor {
	data := make([]float64, len(a.Data))
	for i, v := range a.Data {
		if v > 0 {
			data[i] = v
		}
	}
	out := result(data, a.Shape, a)
	if out.requiresGrad {
		out.back = func() {
			for i := range out.Grad {
				if a.Data[i] > 0 {
					a.Grad[i] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// MatMul returns a·b for 2-D tensors [m,k]×[k,n] → [m,n].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic("nn: MatMul shape mismatch")
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	data := make([]float64, m*n)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		or := data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			if av == 0 {
				continue
			}
			br := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				or[j] += av * br[j]
			}
		}
	}
	out := result(data, []int{m, n}, a, b)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				// dA = dOut · Bᵀ
				for i := 0; i < m; i++ {
					gr := out.Grad[i*n : (i+1)*n]
					agr := a.Grad[i*k : (i+1)*k]
					for p := 0; p < k; p++ {
						br := b.Data[p*n : (p+1)*n]
						s := 0.0
						for j := 0; j < n; j++ {
							s += gr[j] * br[j]
						}
						agr[p] += s
					}
				}
			}
			if b.requiresGrad {
				// dB = Aᵀ · dOut
				for i := 0; i < m; i++ {
					ar := a.Data[i*k : (i+1)*k]
					gr := out.Grad[i*n : (i+1)*n]
					for p := 0; p < k; p++ {
						av := ar[p]
						if av == 0 {
							continue
						}
						bgr := b.Grad[p*n : (p+1)*n]
						for j := 0; j < n; j++ {
							bgr[j] += av * gr[j]
						}
					}
				}
			}
		}
	}
	return out
}

// AddBias adds a bias vector along the last dimension of a.
func AddBias(a, bias *Tensor) *Tensor {
	last := a.Shape[len(a.Shape)-1]
	if len(bias.Shape) != 1 || bias.Shape[0] != last {
		panic("nn: AddBias dimension mismatch")
	}
	data := make([]float64, len(a.Data))
	for i := range data {
		data[i] = a.Data[i] + bias.Data[i%last]
	}
	out := result(data, a.Shape, a, bias)
	if out.requiresGrad {
		out.back = func() {
			if a.requiresGrad {
				for i := range out.Grad {
					a.Grad[i] += out.Grad[i]
				}
			}
			if bias.requiresGrad {
				for i := range out.Grad {
					bias.Grad[i%last] += out.Grad[i]
				}
			}
		}
	}
	return out
}

// Concat concatenates two tensors along the last dimension; leading
// dimensions must match. Used by the LSTM cell ([x ; h]).
func Concat(a, b *Tensor) *Tensor {
	if len(a.Shape) != len(b.Shape) {
		panic("nn: Concat rank mismatch")
	}
	for i := 0; i < len(a.Shape)-1; i++ {
		if a.Shape[i] != b.Shape[i] {
			panic("nn: Concat leading shape mismatch")
		}
	}
	la, lb := a.Shape[len(a.Shape)-1], b.Shape[len(b.Shape)-1]
	rows := len(a.Data) / la
	shape := append([]int(nil), a.Shape...)
	shape[len(shape)-1] = la + lb
	data := make([]float64, rows*(la+lb))
	for r := 0; r < rows; r++ {
		copy(data[r*(la+lb):], a.Data[r*la:(r+1)*la])
		copy(data[r*(la+lb)+la:], b.Data[r*lb:(r+1)*lb])
	}
	out := result(data, shape, a, b)
	if out.requiresGrad {
		out.back = func() {
			for r := 0; r < rows; r++ {
				if a.requiresGrad {
					for i := 0; i < la; i++ {
						a.Grad[r*la+i] += out.Grad[r*(la+lb)+i]
					}
				}
				if b.requiresGrad {
					for i := 0; i < lb; i++ {
						b.Grad[r*lb+i] += out.Grad[r*(la+lb)+la+i]
					}
				}
			}
		}
	}
	return out
}

// SliceLast returns a[..., idx] dropping the last (time) dimension — used
// to take the final timestep of a TCN stack.
func SliceLast(a *Tensor, idx int) *Tensor {
	last := a.Shape[len(a.Shape)-1]
	if idx < 0 {
		idx += last
	}
	rows := len(a.Data) / last
	data := make([]float64, rows)
	for r := 0; r < rows; r++ {
		data[r] = a.Data[r*last+idx]
	}
	out := result(data, a.Shape[:len(a.Shape)-1], a)
	if out.requiresGrad {
		out.back = func() {
			for r := 0; r < rows; r++ {
				a.Grad[r*last+idx] += out.Grad[r]
			}
		}
	}
	return out
}

// Mean returns the scalar mean of all elements.
func Mean(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	n := float64(len(a.Data))
	out := result([]float64{s / n}, []int{1}, a)
	if out.requiresGrad {
		out.back = func() {
			g := out.Grad[0] / n
			for i := range a.Grad {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// MAE returns the mean absolute error between pred and target (the paper's
// training loss, §IV-A3). target carries no gradient.
func MAE(pred, target *Tensor) *Tensor {
	sameShape("MAE", pred, target)
	s := 0.0
	for i := range pred.Data {
		s += math.Abs(pred.Data[i] - target.Data[i])
	}
	n := float64(len(pred.Data))
	out := result([]float64{s / n}, []int{1}, pred)
	if out.requiresGrad {
		out.back = func() {
			g := out.Grad[0] / n
			for i := range pred.Data {
				d := pred.Data[i] - target.Data[i]
				switch {
				case d > 0:
					pred.Grad[i] += g
				case d < 0:
					pred.Grad[i] -= g
				}
			}
		}
	}
	return out
}

// MSE returns the mean squared error between pred and target.
func MSE(pred, target *Tensor) *Tensor {
	sameShape("MSE", pred, target)
	s := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		s += d * d
	}
	n := float64(len(pred.Data))
	out := result([]float64{s / n}, []int{1}, pred)
	if out.requiresGrad {
		out.back = func() {
			g := 2 * out.Grad[0] / n
			for i := range pred.Data {
				pred.Grad[i] += g * (pred.Data[i] - target.Data[i])
			}
		}
	}
	return out
}

// Dropout zeroes elements with probability p during training, scaling the
// survivors by 1/(1-p). rng==nil or p<=0 is the identity (inference).
func Dropout(a *Tensor, p float64, rng interface{ Float64() float64 }) *Tensor {
	if p <= 0 || rng == nil {
		return a
	}
	keep := 1 - p
	mask := make([]float64, len(a.Data))
	data := make([]float64, len(a.Data))
	for i := range data {
		if rng.Float64() < keep {
			mask[i] = 1 / keep
			data[i] = a.Data[i] * mask[i]
		}
	}
	out := result(data, a.Shape, a)
	if out.requiresGrad {
		out.back = func() {
			for i := range out.Grad {
				a.Grad[i] += out.Grad[i] * mask[i]
			}
		}
	}
	return out
}
