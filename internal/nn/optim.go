package nn

import "math"

// Adam implements the Adam optimiser with decoupled L2 penalty and step
// learning-rate decay, matching the paper's training setting (§VI-G1:
// Adam, initial LR 1e-3, LR ×0.1 every 20 epochs, L2 1e-5).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*Tensor
	m, v   [][]float64
	t      int
}

// NewAdam returns an Adam optimiser over the given parameters.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		WeightDecay: 1e-5,
		params:      params,
	}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Step applies one update from the accumulated gradients and clears them.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j] + a.WeightDecay*p.Data[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			p.Data[j] -= a.LR * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.Eps)
			p.Grad[j] = 0
		}
	}
}

// ZeroGrad clears all parameter gradients without stepping.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// DecayLR multiplies the learning rate by factor (the ×0.1-every-20-epochs
// schedule).
func (a *Adam) DecayLR(factor float64) { a.LR *= factor }
