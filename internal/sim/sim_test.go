package sim

import (
	"testing"

	"aets/internal/grouping"
	"aets/internal/primary"
	"aets/internal/wal"
	"aets/internal/workload"
)

func tpccTrace(t *testing.T, txnCount int) *Trace {
	t.Helper()
	gen := workload.NewTPCC(4)
	p := primary.New(gen, 31)
	txns := p.GenerateTxns(txnCount)
	rates := map[wal.TableID]float64{
		workload.TPCCDistrict: 1000, workload.TPCCStock: 1000,
		workload.TPCCCustomer: 1000, workload.TPCCOrder: 1000,
		workload.TPCCOrderLine: 2000,
	}
	plan := grouping.Build(rates, workload.TableIDs(gen.Tables()), grouping.Options{Eps: 0.05, MinPts: 2})
	return BuildTrace(txns, plan, 512)
}

func TestBuildTraceDependencies(t *testing.T) {
	txns := []wal.Txn{
		{ID: 1, Entries: []wal.Entry{{Type: wal.TypeUpdate, Table: 1, RowKey: 7, Columns: []wal.Column{{ID: 1}}}}},
		{ID: 2, Entries: []wal.Entry{{Type: wal.TypeUpdate, Table: 1, RowKey: 7, Columns: []wal.Column{{ID: 1}}}}},
		{ID: 3, Entries: []wal.Entry{{Type: wal.TypeUpdate, Table: 2, RowKey: 1, Columns: []wal.Column{{ID: 1}}}}},
	}
	plan := grouping.SingleGroup([]wal.TableID{1, 2})
	tr := BuildTrace(txns, plan, 10)
	if len(tr.Txns[0].Preds) != 0 {
		t.Fatalf("txn 1 preds: %v", tr.Txns[0].Preds)
	}
	if len(tr.Txns[1].Preds) != 1 || tr.Txns[1].Preds[0] != 0 {
		t.Fatalf("txn 2 must depend on txn 1: %v", tr.Txns[1].Preds)
	}
	if len(tr.Txns[2].Preds) != 0 {
		t.Fatalf("txn 3 preds: %v", tr.Txns[2].Preds)
	}
}

func TestSimulatorsCountWork(t *testing.T) {
	tr := tpccTrace(t, 2000)
	c := DefaultCosts()
	for _, r := range []Result{
		SimulateATR(tr, 8, c), SimulateC5(tr, 8, c),
		SimulateAETS(tr, 8, c), SimulateTPLR(tr, 8, c),
	} {
		if r.Txns != 2000 || r.Entries <= 0 || r.Makespan <= 0 {
			t.Fatalf("%s: %+v", r.Algorithm, r)
		}
		if r.TxnsPerSec() <= 0 {
			t.Fatalf("%s throughput non-positive", r.Algorithm)
		}
	}
}

func TestMoreThreadsNeverSlowerAETS(t *testing.T) {
	tr := tpccTrace(t, 2000)
	c := DefaultCosts()
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		tp := SimulateAETS(tr, n, c).TxnsPerSec()
		if tp < prev*0.98 { // allow tiny allocation-rounding wobble
			t.Fatalf("AETS throughput regressed at %d threads: %v < %v", n, tp, prev)
		}
		prev = tp
	}
}

func TestPaperShapeFig11(t *testing.T) {
	tr := tpccTrace(t, 4000)
	c := DefaultCosts()
	at := func(n int) (aets, atr, c5, tplr float64) {
		return SimulateAETS(tr, n, c).TxnsPerSec(),
			SimulateATR(tr, n, c).TxnsPerSec(),
			SimulateC5(tr, n, c).TxnsPerSec(),
			SimulateTPLR(tr, n, c).TxnsPerSec()
	}

	// At 32 threads: AETS > TPLR > max(ATR, C5) (Fig 8/11 ordering).
	aets32, atr32, c532, tplr32 := at(32)
	if !(aets32 > tplr32) {
		t.Errorf("AETS (%.0f) must beat TPLR (%.0f) at 32 threads", aets32, tplr32)
	}
	if !(tplr32 > atr32 && tplr32 > c532) {
		t.Errorf("TPLR (%.0f) must beat ATR (%.0f) and C5 (%.0f) at 32 threads", tplr32, atr32, c532)
	}

	// ATR flattens relative to AETS: its 16→64 gain is bounded while
	// AETS's committers and workers keep the lead.
	aets16, atr16, _, _ := at(16)
	aets64, atr64, c564, _ := at(64)
	if atr64 > atr16*2.5 {
		t.Errorf("ATR did not flatten: 16t=%.0f 64t=%.0f", atr16, atr64)
	}
	if !(aets64 > c564 && aets64 > atr64 && aets64 >= aets16) {
		t.Errorf("AETS must lead at 64 threads: aets=%.0f c5=%.0f atr=%.0f", aets64, c564, atr64)
	}
	// C5 overtakes ATR at high thread counts (better scalability >32).
	if !(c564 > atr64) {
		t.Errorf("C5 (%.0f) should beat ATR (%.0f) at 64 threads", c564, atr64)
	}
	// At low thread counts C5 is at or below ATR (dispatch parse cost).
	_, atr4, c54, _ := at(4)
	if c54 > atr4*1.1 {
		t.Errorf("C5 (%.0f) should not beat ATR (%.0f) at 4 threads", c54, atr4)
	}
}

func TestCalibrateProducesSaneCosts(t *testing.T) {
	c := Calibrate()
	if c.ParseMeta <= 0 || c.ParseFull <= 0 || c.Lookup <= 0 || c.Install <= 0 {
		t.Fatalf("calibrated costs: %+v", c)
	}
	if c.ParseFull <= c.ParseMeta {
		t.Fatalf("full parse (%.0f) must cost more than header parse (%.0f)", c.ParseFull, c.ParseMeta)
	}
}
