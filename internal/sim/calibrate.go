package sim

import (
	"math/rand"
	"time"

	"aets/internal/memtable"
	"aets/internal/wal"
)

// Calibrate measures the cost-model constants on the running machine by
// micro-benchmarking the real codec and Memtable, so simulated throughputs
// are anchored to actual single-core speeds rather than guesses. The
// structural constants (contention slope, dispatcher sharding) keep their
// defaults; they describe algorithm shape, not machine speed.
func Calibrate() Costs {
	c := DefaultCosts()
	rng := rand.New(rand.NewSource(1))

	// Sample entries resembling the benchmark workloads.
	const samples = 4096
	entries := make([]wal.Entry, samples)
	frames := make([][]byte, samples)
	for i := range entries {
		entries[i] = wal.Entry{
			Type: wal.TypeUpdate, LSN: uint64(i + 1), TxnID: uint64(i/10 + 1),
			Timestamp: int64(i), Table: wal.TableID(rng.Intn(8) + 1),
			RowKey: rng.Uint64() % 100000,
			Columns: []wal.Column{
				{ID: 1, Value: make([]byte, 8)},
				{ID: 2, Value: make([]byte, 16)},
			},
		}
		frames[i] = wal.Encode(&entries[i])
	}

	c.ParseMeta = timePerOp(samples, func(i int) {
		_, _, _ = wal.DecodeHeader(frames[i])
	})
	c.ParseFull = timePerOp(samples, func(i int) {
		_, _, _ = wal.Decode(frames[i])
	})

	mt := memtable.New()
	c.Lookup = timePerOp(samples, func(i int) {
		mt.Table(entries[i].Table).GetOrCreate(entries[i].RowKey)
	})
	recs := make([]*memtable.Record, samples)
	vers := make([]*memtable.Version, samples)
	for i := range recs {
		recs[i] = mt.Table(entries[i].Table).GetOrCreate(entries[i].RowKey)
		vers[i] = &memtable.Version{TxnID: uint64(i), CommitTS: int64(i),
			Columns: entries[i].Columns}
	}
	// Install is the pure link cost: TPLR allocates versions in phase 1,
	// so the commit thread only locks and swings pointers.
	c.Install = timePerOp(samples, func(i int) {
		recs[i].Append(vers[i])
	})
	return c
}

func timePerOp(n int, f func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f(i)
	}
	ns := float64(time.Since(start)) / float64(n)
	if ns < 1 {
		ns = 1
	}
	return ns
}
