// Package sim is a discrete-event simulator of the four replay algorithms
// on a configurable number of cores. The host running this reproduction has
// a single CPU, so Fig 11's 1–64-thread scalability curves cannot be
// measured directly; instead the simulator replays a *real* generated
// workload trace (actual transactions, rows and dependency edges) through a
// cost model of each algorithm's pipeline:
//
//	dispatcher (serial)  →  n replay workers  →  commit/visibility thread(s)
//
// The per-operation cost constants are calibrated against the real engine
// (see Calibrate), and the synchronisation structure — ATR's operation
// sequence check blocking a worker until the row's previous writer is
// applied, C5's full-image parse on the dispatcher, the single commit
// thread of ATR/C5/TPLR versus AETS's per-group committers — is modelled
// explicitly. These structural terms are exactly what the paper credits
// for the shapes of Fig 11.
package sim

import (
	"time"

	"aets/internal/alloc"
	"aets/internal/grouping"
	"aets/internal/wal"
)

// Costs are the per-operation service times of the model, in nanoseconds.
type Costs struct {
	ParseMeta   float64 // header-only parse of one entry (AETS/ATR dispatch)
	ParseFull   float64 // full decode of one entry (C5 dispatch; all workers)
	Lookup      float64 // Memtable lookup/translate per entry
	Install     float64 // version-chain append per entry
	TxnOverhead float64 // per-transaction bookkeeping at commit
	VisOverhead float64 // per-transaction visibility-order bookkeeping
	SeqCheck    float64 // ATR per-entry sequence-check bookkeeping
	// SeqContention scales the sequence-check cost with worker count: the
	// more transactions in flight, the more often a check misses and the
	// longer the spin/yield synchronisation lasts. This growing term is the
	// paper's explanation for ATR's throughput flattening past 16 threads
	// (§VI-C).
	SeqContention float64
	// DispatchShard is the number of replay workers served by one
	// dispatcher thread; ATR's TxnID routing and C5's row routing are both
	// stateless and shard across dispatchers in their original systems.
	DispatchShard int
	// RowQueue is C5's additional per-entry cost beyond the shared decode:
	// dedicated-queue management (hashing, enqueue/dequeue, watermark
	// accounting) plus the full data-image handling its row-based dispatch
	// needs. §VI-B calls this out as "significantly higher parsing costs";
	// the default makes C5's total per-entry work ≈3× ATR's check-free
	// work, which places its curve slightly under ATR's below ~24 threads
	// and above it beyond (the Fig 11 crossover).
	RowQueue float64
}

// DefaultCosts are rough single-core numbers; prefer Calibrate for values
// measured on the running machine.
func DefaultCosts() Costs {
	return Costs{
		ParseMeta:     45,
		ParseFull:     300,
		Lookup:        180,
		Install:       8,
		TxnOverhead:   20,
		VisOverhead:   120,
		SeqCheck:      40,
		SeqContention: 0.06,
		DispatchShard: 16,
		RowQueue:      1200,
	}
}

// dispatchers returns the dispatcher thread count for n workers.
func (c Costs) dispatchers(n int) int {
	s := c.DispatchShard
	if s <= 0 {
		s = 8
	}
	d := (n + s - 1) / s
	if d < 1 {
		d = 1
	}
	return d
}

// Txn is one traced transaction: its per-group pieces and dependency
// predecessors (the transactions that last wrote the rows it writes).
type Txn struct {
	ID      uint64
	Entries int
	// PerGroup maps group index → entry count for AETS/TPLR.
	PerGroup map[int]int
	// Preds are the distinct predecessor transaction indices (into the
	// trace slice) whose writes this transaction's rows depend on.
	Preds []int
	// Rows are the (table,row)-hashed queue keys of each entry, used by
	// the C5 model to route entries to per-row worker queues.
	Rows []uint64
}

// Trace is a workload trace plus the grouping AETS would use.
type Trace struct {
	Txns      []Txn
	Plan      *grouping.Plan
	EpochSize int
}

// BuildTrace converts generated transactions into the simulator's trace
// form under the given plan.
func BuildTrace(txns []wal.Txn, plan *grouping.Plan, epochSize int) *Trace {
	tr := &Trace{Plan: plan, EpochSize: epochSize}
	lastWriter := make(map[uint64]int) // row hash → trace index
	for i := range txns {
		t := &txns[i]
		st := Txn{ID: t.ID, Entries: len(t.Entries), PerGroup: make(map[int]int)}
		predSet := make(map[int]struct{})
		for j := range t.Entries {
			e := &t.Entries[j]
			if gi, ok := plan.GroupOf(e.Table); ok {
				st.PerGroup[gi]++
			}
			h := rowKey(e.Table, e.RowKey)
			st.Rows = append(st.Rows, h)
			if p, ok := lastWriter[h]; ok && p != i {
				predSet[p] = struct{}{}
			}
			lastWriter[h] = i
		}
		for p := range predSet {
			st.Preds = append(st.Preds, p)
		}
		tr.Txns = append(tr.Txns, st)
	}
	return tr
}

func rowKey(t wal.TableID, key uint64) uint64 {
	h := uint64(1469598103934665603)
	h = (h ^ uint64(t)) * 1099511628211
	h = (h ^ key) * 1099511628211
	return h
}

// Result reports one simulated run.
type Result struct {
	Algorithm string
	Threads   int
	Makespan  time.Duration
	Txns      int
	Entries   int
}

// TxnsPerSec returns the simulated replay throughput.
func (r Result) TxnsPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Txns) / r.Makespan.Seconds()
}

func totals(tr *Trace) (txns, entries int) {
	txns = len(tr.Txns)
	for i := range tr.Txns {
		entries += tr.Txns[i].Entries
	}
	return
}

// SimulateATR models ATR with n workers: serial header-parse dispatch,
// whole transactions routed by TxnID, workers blocked by the operation
// sequence check until every predecessor transaction is applied, and a
// single visibility thread serialising commit order.
func SimulateATR(tr *Trace, n int, c Costs) Result {
	txns, entries := totals(tr)
	disp := make([]float64, c.dispatchers(n))
	workerFree := make([]float64, n)
	finish := make([]float64, len(tr.Txns))
	vis := 0.0
	seq := c.SeqCheck * (1 + c.SeqContention*float64(n-1))
	for i := range tr.Txns {
		t := &tr.Txns[i]
		// +2 frames for BEGIN/COMMIT headers; dispatchers shard round-robin.
		d := i % len(disp)
		disp[d] += float64(t.Entries+2) * c.ParseMeta
		w := int(t.ID % uint64(n))
		start := maxf(workerFree[w], disp[d])
		// The sequence check blocks the worker (it spins) until every
		// predecessor is fully applied.
		for _, p := range t.Preds {
			start = maxf(start, finish[p])
		}
		service := float64(t.Entries) * (c.ParseFull + c.Lookup + c.Install + seq)
		finish[i] = start + service
		workerFree[w] = finish[i]
		// Single visibility thread: commit order is TxnID order.
		vis = maxf(vis, finish[i]) + c.VisOverhead
	}
	return Result{Algorithm: "ATR", Threads: n, Makespan: time.Duration(vis), Txns: txns, Entries: entries}
}

// SimulateC5 models C5 with n threads split between dispatchers and
// appliers. C5's dispatchers fully decode every entry (row-based dispatch
// needs the data image) and its appliers install without ordering checks;
// because the split is self-balancing in the original system, the model
// treats the n threads as one pool in which every entry pays the whole
// pipeline cost — full parse, lookup, install and the dedicated-queue
// management overhead — while the entries of one row stay serialised on
// their row queue. The periodic watermark thread adds visibility lag, not
// a throughput term beyond its per-transaction bookkeeping.
func SimulateC5(tr *Trace, n int, c Costs) Result {
	txns, entries := totals(tr)
	perEntry := c.ParseFull + c.Lookup + c.Install + c.RowQueue
	threadFree := make([]float64, n)
	rowFree := make(map[uint64]float64, 1<<12)
	var watermark float64
	for i := range tr.Txns {
		t := &tr.Txns[i]
		for _, row := range t.Rows {
			// Earliest-free pool thread applies the entry, but not before
			// the row's previous entry finished (per-row queue order).
			w := 0
			for x := 1; x < n; x++ {
				if threadFree[x] < threadFree[w] {
					w = x
				}
			}
			start := maxf(threadFree[w], rowFree[row])
			done := start + perEntry
			threadFree[w] = done
			rowFree[row] = done
		}
		watermark += c.VisOverhead
	}
	last := watermark
	for _, f := range threadFree {
		last = maxf(last, f)
	}
	return Result{Algorithm: "C5", Threads: n, Makespan: time.Duration(last), Txns: txns, Entries: entries}
}

// SimulateAETS models AETS with n workers under the trace's plan: serial
// header-parse dispatch per epoch, two stages (hot then cold), per-group
// worker allocation by λ·n weight, TPLR phase-1 translation with no
// ordering constraints, and one commit thread per group running in
// parallel with other groups' commits.
func SimulateAETS(tr *Trace, n int, c Costs) Result {
	return simulateGrouped(tr, n, c, "AETS", true)
}

// SimulateTPLR models the ungrouped TPLR baseline: identical machinery
// with a single group, hence a single commit thread and no staging.
func SimulateTPLR(tr *Trace, n int, c Costs) Result {
	single := grouping.SingleGroup(allTables(tr.Plan))
	flat := &Trace{Plan: single, EpochSize: tr.EpochSize, Txns: make([]Txn, len(tr.Txns))}
	for i := range tr.Txns {
		t := tr.Txns[i]
		flat.Txns[i] = Txn{ID: t.ID, Entries: t.Entries, Preds: t.Preds, Rows: t.Rows,
			PerGroup: map[int]int{0: t.Entries}}
	}
	r := simulateGrouped(flat, n, c, "TPLR", false)
	return r
}

func allTables(p *grouping.Plan) []wal.TableID {
	var out []wal.TableID
	for _, g := range p.Groups {
		out = append(out, g.Tables...)
	}
	return out
}

func simulateGrouped(tr *Trace, n int, c Costs, name string, twoStage bool) Result {
	txns, entries := totals(tr)
	es := tr.EpochSize
	if es <= 0 {
		es = 2048
	}
	now := 0.0
	for at := 0; at < len(tr.Txns); at += es {
		end := at + es
		if end > len(tr.Txns) {
			end = len(tr.Txns)
		}
		epoch := tr.Txns[at:end]

		// Dispatch of the whole epoch (header parse only), sharded over the
		// dispatcher threads like the other algorithms.
		d := float64(c.dispatchers(n))
		for i := range epoch {
			now += float64(epoch[i].Entries+2) * c.ParseMeta / d
		}

		// Collect per-group piece lists for this epoch.
		type piece struct{ entries int }
		groupPieces := make(map[int][]piece)
		groupBytes := make(map[int]int)
		for i := range epoch {
			for gi, cnt := range epoch[i].PerGroup {
				groupPieces[gi] = append(groupPieces[gi], piece{cnt})
				groupBytes[gi] += cnt
			}
		}

		runStage := func(gids []int) float64 {
			if len(gids) == 0 {
				return now
			}
			loads := make([]alloc.GroupLoad, len(gids))
			for k, gi := range gids {
				loads[k] = alloc.GroupLoad{Unreplayed: groupBytes[gi], Rate: tr.Plan.Groups[gi].Rate}
			}
			threads := alloc.Allocate(n, loads, alloc.LogUrgency)
			stageEnd := now
			for k, gi := range gids {
				tn := threads[k]
				if tn < 1 {
					tn = 1
				}
				// Phase 1: tn workers translate pieces greedily.
				free := make([]float64, tn)
				for w := range free {
					free[w] = now
				}
				commit := now
				for _, p := range groupPieces[gi] {
					// Earliest-free worker takes the next piece.
					w := 0
					for x := 1; x < tn; x++ {
						if free[x] < free[w] {
							w = x
						}
					}
					done := free[w] + float64(p.entries)*(c.ParseFull+c.Lookup)
					free[w] = done
					// Phase 2: the group's committer installs in order.
					commit = maxf(commit, done) + float64(p.entries)*c.Install + c.TxnOverhead
				}
				stageEnd = maxf(stageEnd, commit)
			}
			return stageEnd
		}

		var hot, cold []int
		for gi := range groupPieces {
			if tr.Plan.Groups[gi].Hot {
				hot = append(hot, gi)
			} else {
				cold = append(cold, gi)
			}
		}
		if twoStage {
			now = runStage(hot)
			now = runStage(cold)
		} else {
			now = runStage(append(hot, cold...))
		}
	}
	return Result{Algorithm: name, Threads: n, Makespan: time.Duration(now), Txns: txns, Entries: entries}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
