package htap

import "aets/internal/ship"

// A Node is fed directly by the replication receiver.
var _ ship.Applier = (*Node)(nil)

// ShipReceiver returns a replication receiver feeding this node. The
// config's Applier is bound to the node and, unless set, the resume
// cursor starts at the node's next expected epoch (nonzero after
// RestoreNode — that is what lets a restarted backup resume the stream
// instead of re-replaying it).
func (n *Node) ShipReceiver(cfg ship.ReceiverConfig) (*ship.Receiver, error) {
	cfg.Applier = n
	if cfg.Resume == 0 {
		cfg.Resume = n.NextSeq()
	}
	return ship.NewReceiver(cfg)
}
