package htap

import (
	"bytes"
	"testing"

	"aets/internal/grouping"
	"aets/internal/workload"
)

// columnarFixture builds a row-wise node and a columnar twin fed the
// identical epoch stream.
func columnarFixture(t *testing.T) (row, col *Node, last int64, plan *grouping.Plan) {
	t.Helper()
	nRow, txns, encs, plan := nodeFixture(t)
	nCol, err := NewNode(KindAETS, plan, Options{Workers: 2, Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range encs {
		nRow.Feed(&encs[i])
		nCol.Feed(&encs[i])
	}
	nRow.Drain()
	nCol.Drain()
	t.Cleanup(func() { nRow.Close(); nCol.Close() })
	return nRow, nCol, txns[len(txns)-1].CommitTS, plan
}

// TestColumnarNodeQueryEquivalence freezes a columnar node's cold data
// through the real replay pipeline and checks reads and digests against a
// row-wise twin at the same cursor.
func TestColumnarNodeQueryEquivalence(t *testing.T) {
	nRow, nCol, last, _ := columnarFixture(t)

	// Freeze everything at the full watermark; the row twin vacuums at
	// the same point (the freeze rule stores exactly what that vacuum
	// keeps).
	nRow.Vacuum(last)
	nCol.Vacuum(last)
	if nCol.Compact(last) == 0 {
		t.Fatal("compaction froze nothing")
	}
	if nRow.Compact(last) != 0 {
		t.Fatal("row-wise Compact must be a no-op")
	}
	if nCol.Colstore() == nil || nRow.Colstore() != nil {
		t.Fatal("Colstore handle wiring")
	}

	tables := workload.TableIDs(workload.NewTPCC(1).Tables())
	for _, id := range tables {
		sr := nRow.Query(last, id)
		sc := nCol.Query(last, id)
		cr, err1 := sr.Count(id)
		cc, err2 := sc.Count(id)
		if err1 != nil || err2 != nil || cr != cc {
			t.Fatalf("table %d: Count row=%d col=%d (%v/%v)", id, cr, cc, err1, err2)
		}
		mr, _ := sr.MaxCommitTS(id)
		mc, _ := sc.MaxCommitTS(id)
		if mr != mc {
			t.Fatalf("table %d: MaxCommitTS row=%d col=%d", id, mr, mc)
		}
	}

	// The digests must agree even though the columnar node's chains are
	// empty: the base segments stand in for the frozen heads.
	if dr, dc := nRow.StateDigest(), nCol.StateDigest(); dr != dc {
		t.Fatalf("digest diverged: row %x col %x", dr, dc)
	}
}

// TestColumnarNodeCheckpointCoversFrozen cuts a checkpoint from a fully
// frozen columnar node and restores it: the restored (row-wise) state
// must digest identically — the base segments made it into the stream.
func TestColumnarNodeCheckpointCoversFrozen(t *testing.T) {
	nRow, nCol, last, plan := columnarFixture(t)
	nRow.Vacuum(last)
	nCol.Vacuum(last)
	if nCol.Compact(last) == 0 {
		t.Fatal("compaction froze nothing")
	}

	var buf bytes.Buffer
	meta, err := nCol.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, gotMeta, err := RestoreNode(&buf, KindAETS, plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if gotMeta.LastEpochSeq != meta.LastEpochSeq {
		t.Fatalf("restored meta %+v, want %+v", gotMeta, meta)
	}
	if dr, dc := restored.StateDigest(), nRow.StateDigest(); dr != dc {
		t.Fatalf("restored digest %x, row twin %x — checkpoint lost frozen rows", dr, dc)
	}
	// And the restored node answers queries like the row twin.
	id := workload.TPCCOrderLine
	cr, _ := nRow.Query(last, id).Count(id)
	cc, _ := restored.Query(last, id).Count(id)
	if cr != cc || cr == 0 {
		t.Fatalf("restored Count = %d, want %d (nonzero)", cc, cr)
	}
}
