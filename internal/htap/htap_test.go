package htap

import (
	"testing"
	"time"

	"aets/internal/memtable"
	"aets/internal/reference"
	"aets/internal/workload"
)

func smallTPCC(queries int) Experiment {
	return Experiment{
		NewGen:     func() workload.Generator { return workload.NewTPCC(2) },
		Rates:      TPCCRates(1000),
		Txns:       1200,
		EpochSize:  256,
		Workers:    4,
		Queries:    queries,
		QueryEvery: 100 * time.Microsecond,
		Seed:       11,
	}
}

func TestRunAllKinds(t *testing.T) {
	for _, k := range Kinds {
		res, err := Run(k, smallTPCC(32))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.Throughput.TxnsPerSec() <= 0 {
			t.Fatalf("%s: zero throughput", k)
		}
		if res.HotReplayTime <= 0 || res.ColdReplayTime <= 0 {
			t.Fatalf("%s: replay times %v %v", k, res.HotReplayTime, res.ColdReplayTime)
		}
		if res.HotReplayTime > res.ColdReplayTime {
			t.Fatalf("%s: hot stage time exceeds total (%v > %v)", k, res.HotReplayTime, res.ColdReplayTime)
		}
		if res.Visibility.Count() == 0 {
			t.Fatalf("%s: no visibility samples", k)
		}
	}
}

func TestNewReplayerUnknownKind(t *testing.T) {
	exp := smallTPCC(0)
	if _, err := NewReplayer("nope", memtable.New(), exp.Plan(), Options{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCHRatesCoverWrittenHotTables(t *testing.T) {
	gen := workload.NewCHBench(1)
	rates := CHRates(gen)
	if len(rates) == 0 {
		t.Fatal("no CH rates")
	}
	if _, ok := rates[workload.TPCCOrderLine]; !ok {
		t.Fatal("order_line must be rated (most CH queries touch it)")
	}
	if _, ok := rates[workload.TPCCHistory]; ok {
		t.Fatal("history is never read by CH queries")
	}
}

func TestAETSHotStageShareTracksEntryShare(t *testing.T) {
	// With the TPC-C mix, hot tables carry ~91% of entries; the hot stage
	// must take the dominant share of AETS's replay time.
	res, err := Run(KindAETS, smallTPCC(0))
	if err != nil {
		t.Fatal(err)
	}
	share := float64(res.HotReplayTime) / float64(res.ColdReplayTime)
	if share < 0.5 || share > 1.0 {
		t.Fatalf("hot stage share %.2f, want within (0.5, 1.0] for a 91%%-hot workload", share)
	}
}

func TestRunAdaptiveStrategies(t *testing.T) {
	cfg := AdaptiveConfig{
		Slots: 2, WarmupSlots: 1, TxnsPerSlot: 512, EpochSize: 256,
		Workers: 4, QueriesPerSlot: 8, TrainSlots: 80,
		DTGMHidden: 4, DTGMEpochs: 1, Seed: 3,
	}
	for _, s := range []Strategy{StrategyDTGM, StrategyHA, StrategyNOAC} {
		res, err := RunAdaptive(s, cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(res.PerSlotMeanUS) != cfg.Slots {
			t.Fatalf("%s: %d slots, want %d", s, len(res.PerSlotMeanUS), cfg.Slots)
		}
	}
	if _, err := RunAdaptive("bogus", cfg); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestReplayEquivalenceAcrossKinds(t *testing.T) {
	// All four replayers over the same encoded stream must produce
	// identical Memtables.
	exp := smallTPCC(0)
	ref := memtable.New()
	var refSet bool
	for _, k := range Kinds {
		mt := memtable.New()
		r, err := NewReplayer(k, mt, exp.Plan(), Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		encs := exp.Encoded()
		r.Start()
		for i := range encs {
			r.Feed(&encs[i])
		}
		r.Drain()
		r.Stop()
		if err := r.Err(); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !refSet {
			ref, refSet = mt, true
			continue
		}
		if err := reference.Equal(ref, mt, workload.TableIDs(exp.NewGen().Tables())); err != nil {
			t.Fatalf("%s differs from %s: %v", k, Kinds[0], err)
		}
	}
}
