package htap

import (
	"bytes"
	"testing"
	"time"

	"aets/internal/checkpoint"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/reference"
	"aets/internal/wal"
	"aets/internal/workload"
)

func nodeFixture(t *testing.T) (*Node, []wal.Txn, []epoch.Encoded, *grouping.Plan) {
	t.Helper()
	gen := workload.NewTPCC(1)
	p := primary.New(gen, 77)
	txns := p.GenerateTxns(600)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, 128))
	plan := grouping.Build(TPCCRates(500), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
	n, err := NewNode(KindAETS, plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n, txns, encs, plan
}

func TestNodeFeedQueryClose(t *testing.T) {
	n, txns, encs, _ := nodeFixture(t)
	for i := range encs {
		n.Feed(&encs[i])
	}
	n.Drain()

	last := txns[len(txns)-1].CommitTS
	snap := n.Query(last, workload.TPCCOrderLine)
	count, err := snap.Count(workload.TPCCOrderLine)
	if err != nil || count == 0 {
		t.Fatalf("count %d err %v", count, err)
	}
	if n.VisibleTS() < last {
		t.Fatalf("visible ts %d < %d", n.VisibleTS(), last)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCheckpointRestoreResume(t *testing.T) {
	n, txns, encs, plan := nodeFixture(t)
	half := len(encs) / 2
	for i := 0; i < half; i++ {
		n.Feed(&encs[i])
	}
	var buf bytes.Buffer
	meta, err := n.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LastEpochSeq != encs[half-1].Seq {
		t.Fatalf("checkpoint at epoch %d, want %d", meta.LastEpochSeq, encs[half-1].Seq)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	restored, gotMeta, err := RestoreNode(&buf, KindAETS, plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.LastEpochSeq != meta.LastEpochSeq {
		t.Fatalf("restored meta %+v", gotMeta)
	}
	// The restored state must already be visible at the watermark.
	if restored.VisibleTS() < meta.LastCommitTS {
		t.Fatalf("restored visible ts %d < %d", restored.VisibleTS(), meta.LastCommitTS)
	}
	// Resume the stream.
	for i := half; i < len(encs); i++ {
		restored.Feed(&encs[i])
	}
	restored.Drain()

	full := memtable.New()
	reference.Apply(full, txns)
	gen := workload.NewTPCC(1)
	if err := reference.Equal(full, restored.Memtable(), workload.TableIDs(gen.Tables())); err != nil {
		t.Fatal(err)
	}
	restored.Close()
}

// TestNodeCheckpointMetaRoundTrip pins the checkpoint meta the node
// records: the last committed transaction ID and fed-ness must survive
// Checkpoint→RestoreNode. LastTxnID used to be left zero, so a restored
// operator could not tell which primary transaction the state contained.
func TestNodeCheckpointMetaRoundTrip(t *testing.T) {
	n, txns, encs, plan := nodeFixture(t)
	for i := range encs {
		n.Feed(&encs[i])
	}
	var buf bytes.Buffer
	meta, err := n.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantTxn := txns[len(txns)-1].ID
	if meta.LastTxnID != wantTxn {
		t.Fatalf("checkpoint LastTxnID %d, want %d", meta.LastTxnID, wantTxn)
	}
	if !meta.Fed || meta.NextEpochSeq() != encs[len(encs)-1].Seq+1 {
		t.Fatalf("checkpoint meta %+v, want fed with resume %d", meta, encs[len(encs)-1].Seq+1)
	}
	n.Close()

	restored, gotMeta, err := RestoreNode(&buf, KindAETS, plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if gotMeta.LastTxnID != wantTxn || !gotMeta.Fed {
		t.Fatalf("restored meta %+v, want LastTxnID %d fed", gotMeta, wantTxn)
	}
	// A second checkpoint cut immediately after restore must carry the
	// same position — the node, not just the meta, remembers it.
	var buf2 bytes.Buffer
	meta2, err := restored.Checkpoint(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if meta2.LastTxnID != wantTxn || !meta2.Fed || meta2.LastEpochSeq != meta.LastEpochSeq {
		t.Fatalf("re-checkpoint meta %+v, want %+v", meta2, meta)
	}
}

// TestNodeCheckpointAtomicUnderFeed: cutting a checkpoint while the
// node is still being fed must yield an image consistent with its
// recorded cursor — every epoch at or below meta.LastEpochSeq fully
// present, nothing from above it. A cut torn by concurrent feeds is how
// a wire-snapshot receiver ends up silently diverged: it resumes the
// stream at the claimed cursor, so versions the image missed are gone
// for good and versions it over-included get applied twice.
func TestNodeCheckpointAtomicUnderFeed(t *testing.T) {
	gen := workload.NewTPCC(1)
	p := primary.New(gen, 99)
	txns := p.GenerateTxns(3000)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, 16))
	plan := grouping.Build(TPCCRates(500), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
	n, err := NewNode(KindAETS, plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	var feedErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range encs {
			if feedErr = n.Feed(&encs[i]); feedErr != nil {
				return
			}
			// Pace the feed so several cuts overlap the live stream.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	tables := workload.TableIDs(gen.Tables())
	feeding := true
	for cut := 0; feeding || cut == 0; cut++ {
		select {
		case <-done:
			feeding = false
		default:
		}
		var buf bytes.Buffer
		meta, err := n.Checkpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		if meta.Fed {
			for i := range encs {
				if encs[i].Seq > meta.LastEpochSeq {
					break
				}
				covered += encs[i].TxnCount
			}
		}
		mt, _, err := checkpoint.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := memtable.New()
		reference.Apply(want, txns[:covered])
		if err := reference.Equal(want, mt, tables); err != nil {
			t.Fatalf("cut %d at epoch %d (fed %v) torn: %v", cut, meta.LastEpochSeq, meta.Fed, err)
		}
	}
	<-done
	if feedErr != nil {
		t.Fatal(feedErr)
	}
}

// TestNodeHeartbeatDoesNotClaimTxns pins that heartbeats (TxnCount 0)
// advance the primary watermark but not LastTxnID.
func TestNodeHeartbeatDoesNotClaimTxns(t *testing.T) {
	n, txns, encs, _ := nodeFixture(t)
	defer n.Close()
	for i := range encs {
		n.Feed(&encs[i])
	}
	n.Drain()
	wantTxn := txns[len(txns)-1].ID
	hb := n.PrimaryTS() + 5000
	if err := n.Heartbeat(hb); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if got := n.PrimaryTS(); got != hb {
		t.Fatalf("primary ts %d, want heartbeat %d", got, hb)
	}
	if n.ReplayLag() != 0 {
		t.Fatalf("replay lag %d after drain, want 0", n.ReplayLag())
	}
	var buf bytes.Buffer
	meta, err := n.Checkpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.LastTxnID != wantTxn {
		t.Fatalf("heartbeat changed LastTxnID: %d, want %d", meta.LastTxnID, wantTxn)
	}
}

func TestNodeVacuumBoundsVersions(t *testing.T) {
	// One hot row updated many times: before vacuum the chain holds every
	// version, afterwards only those at or above the watermark (plus its
	// anchor).
	var txns []wal.Txn
	for i := 1; i <= 300; i++ {
		txns = append(txns, wal.Txn{ID: uint64(i), CommitTS: int64(i * 10),
			Entries: []wal.Entry{{
				Type: wal.TypeUpdate, TxnID: uint64(i), Table: 1, RowKey: 1,
				WriteSeq: uint64(i - 1),
				Columns:  []wal.Column{{ID: 1, Value: []byte{byte(i)}}},
			}}})
	}
	plan := grouping.SingleGroup([]wal.TableID{1})
	n, err := NewNode(KindAETS, plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 100)) {
		enc := enc
		n.Feed(&enc)
	}
	n.Drain()

	rec := n.Memtable().Table(1).Get(1)
	if rec.ChainLen() != 300 {
		t.Fatalf("chain %d, want 300", rec.ChainLen())
	}
	removed := n.Vacuum(2500) // keep versions ≥ ts 2500 plus the anchor at 2500
	if removed == 0 {
		t.Fatal("vacuum removed nothing")
	}
	if got := rec.ChainLen(); got != 51 { // 2500..3000 by 10 = 51 versions
		t.Fatalf("post-vacuum chain %d, want 51", got)
	}
	// Reads at or above the watermark still correct.
	snap := n.Query(2500, 1)
	row, ok, err := snap.Get(1, 1)
	if err != nil || !ok || row.CommitTS != 2500 {
		t.Fatalf("watermark read: %+v ok=%v err=%v", row, ok, err)
	}
}

func TestNodeVacuumLoop(t *testing.T) {
	n, _, encs, _ := nodeFixture(t)
	defer n.Close()
	stop := n.StartVacuumLoop(5*time.Millisecond, 1000)
	defer stop()
	for i := range encs {
		n.Feed(&encs[i])
	}
	n.Drain()
	time.Sleep(30 * time.Millisecond) // let the loop fire at least once
	stop()
	// The loop must not have broken reads at the visible timestamp.
	snap := n.Query(n.VisibleTS(), workload.TPCCStock)
	if _, err := snap.Count(workload.TPCCStock); err != nil {
		t.Fatal(err)
	}
}
