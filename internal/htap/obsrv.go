package htap

import (
	"aets/internal/metrics"
	"aets/internal/obsrv"
)

// HealthSource returns an obsrv health callback bound to this node. Each
// call (once per scrape) refreshes the derived replay_lag_ts gauge in reg
// and reports:
//
//   - healthy while replay has no fatal error — a fatal Engine.Err is the
//     one unrecoverable state;
//   - the replay lag — how far the visible timestamp trails the newest
//     primary watermark the node has seen through fed epochs/heartbeats;
//   - the transport state, when a ship connection probe is supplied.
//     Informational, not a health gate: a backup waiting for its primary
//     to (re)connect is ready, not broken.
//
// shipConnected may be nil when the node is fed in-process (no transport
// to probe).
func (n *Node) HealthSource(reg *metrics.Registry, shipConnected func() bool) func() obsrv.Health {
	if reg == nil {
		reg = metrics.Default
	}
	lag := reg.Gauge("replay_lag_ts")
	var segs, frozenRows, compactions, pruneHits, pruneMisses *metrics.Gauge
	if n.cs != nil {
		segs = reg.Gauge("colstore_segments")
		frozenRows = reg.Gauge("colstore_frozen_rows_total")
		compactions = reg.Gauge("colstore_compactions_total")
		pruneHits = reg.Gauge("colstore_prune_hits_total")
		pruneMisses = reg.Gauge("colstore_prune_misses_total")
	}
	return func() obsrv.Health {
		h := obsrv.Health{
			Healthy:   true,
			Status:    "ok",
			VisibleTS: n.VisibleTS(),
			PrimaryTS: n.PrimaryTS(),
		}
		h.ReplayLagTS = n.ReplayLag()
		lag.Set(float64(h.ReplayLagTS))
		if n.cs != nil {
			h.Columnar = true
			h.ColstoreSegments = n.cs.Segments.Load()
			h.ColstoreFrozenRows = n.cs.FrozenRows.Load()
			h.ColstoreCompactions = n.cs.Compactions.Load()
			segs.Set(float64(h.ColstoreSegments))
			frozenRows.Set(float64(h.ColstoreFrozenRows))
			compactions.Set(float64(h.ColstoreCompactions))
			pruneHits.Set(float64(n.cs.PruneHits.Load()))
			pruneMisses.Set(float64(n.cs.PruneMisses.Load()))
		}
		if err := n.Err(); err != nil {
			h.Healthy = false
			h.Status = "replay failed"
			h.Err = err.Error()
		}
		if shipConnected != nil {
			h.ShipConnected = shipConnected()
		} else {
			h.ShipConnected = true
		}
		return h
	}
}
