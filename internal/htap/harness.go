package htap

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/wal"
	"aets/internal/workload"
)

// Experiment describes one visibility/throughput run: the workload, its
// grouping, how many transactions to replay, and the concurrent analytical
// query load.
type Experiment struct {
	// NewGen builds a fresh workload generator. A factory rather than an
	// instance because generators carry counters (order IDs etc.): every
	// algorithm must replay the *identical* stream, which requires a fresh
	// generator with the same seed per run.
	NewGen    func() workload.Generator
	Rates     map[wal.TableID]float64 // access rates driving the plan
	PerTable  bool                    // one group per hot table (CH setup)
	Txns      int
	EpochSize int
	Workers   int
	// Queries is the number of analytical queries issued concurrently with
	// replay; 0 disables the query load.
	Queries int
	// QueryEvery paces query arrivals (default 500µs).
	QueryEvery time.Duration
	// PrimaryRate paces epoch shipping at the given primary transaction
	// rate (txns/second). 0 ships as fast as possible, which turns
	// visibility delays into pure backlog measurements; visibility
	// experiments should pace at a rate the backup can absorb (the paper
	// replicates "in epoch mode, simulating a real-time environment").
	// Use CalibrateRate to derive one from the AETS replay throughput.
	PrimaryRate float64
	Seed        int64
}

func (e *Experiment) fill() {
	if e.EpochSize == 0 {
		e.EpochSize = epoch.DefaultSize
	}
	if e.QueryEvery == 0 {
		e.QueryEvery = 500 * time.Microsecond
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
}

// Plan builds the experiment's group plan from its rates.
func (e *Experiment) Plan() *grouping.Plan {
	return grouping.Build(e.Rates, workload.TableIDs(e.NewGen().Tables()),
		grouping.Options{PerTable: e.PerTable, Eps: 0.05, MinPts: 2})
}

// Encoded generates the experiment's full replication stream.
func (e *Experiment) Encoded() []epoch.Encoded {
	exp := *e
	exp.fill()
	p := primary.New(exp.NewGen(), exp.Seed)
	return p.GenerateEncoded(exp.Txns, exp.EpochSize)
}

// RunResult is the outcome of one Run.
type RunResult struct {
	Algorithm  string
	Throughput metrics.Throughput
	// HotReplayTime is the cumulative replay time spent on hot-table
	// groups (stage 1); ColdReplayTime is the total replay time (hot plus
	// cold stages). For the ungrouped ATR and C5 baselines both equal the
	// end-to-end replay time: they cannot finish the hot class early
	// (Fig 8(b)/9(b)).
	HotReplayTime  time.Duration
	ColdReplayTime time.Duration
	// Visibility collects the per-query visibility delays.
	Visibility *metrics.DelayRecorder
	// PerQuery collects visibility delays per analytical query name
	// (Fig 10).
	PerQuery map[string]*metrics.DelayRecorder
	// Breakdown is the Table II phase accounting (AETS/TPLR only).
	Breakdown *metrics.Breakdown
}

// Run replays the experiment's workload on a fresh backup of the given
// kind while issuing the analytical query load, and reports throughput,
// hot/cold replay times and visibility delays.
func Run(kind Kind, exp Experiment) (*RunResult, error) {
	exp.fill()
	gen := exp.NewGen()
	p := primary.New(gen, exp.Seed)
	encs := p.GenerateEncoded(exp.Txns, exp.EpochSize)
	entries := 0
	for i := range encs {
		entries += encs[i].EntryCount
	}
	lastTS := encs[len(encs)-1].LastCommitTS

	var bd metrics.Breakdown
	mt := memtable.New()
	r, err := NewReplayer(kind, mt, exp.Plan(), Options{
		Workers: exp.Workers, Breakdown: &bd,
	})
	if err != nil {
		return nil, err
	}

	// Exact recorders: the harness reproduces the paper's percentile
	// tables over bounded runs, where reservoir estimates would add noise.
	res := &RunResult{
		Algorithm:  r.Name(),
		Visibility: metrics.NewExactDelayRecorder(),
		PerQuery:   make(map[string]*metrics.DelayRecorder),
		Breakdown:  &bd,
	}
	queries := gen.Queries()
	for _, q := range queries {
		res.PerQuery[q.Name] = metrics.NewExactDelayRecorder()
	}

	var shipped atomic.Int64
	firstTS := int64(0)
	if len(encs) > 0 {
		if txns0, err := encs[0].Decode(); err == nil && len(txns0) > 0 {
			firstTS = txns0[0].CommitTS
		}
	}
	start := time.Now()

	// snapshotTS returns a query's qts: the freshest primary snapshot the
	// backup knows of — the commit timestamp of the last *shipped* epoch.
	// Transactions still assembling into the next epoch are not part of
	// any query's snapshot; their freshness cost is the epoch assembly
	// latency, which Fig 12 reports as a separate column (folding it into
	// every query's wait would just add epoch/2÷rate to all algorithms
	// equally and drown the ordering signal).
	snapshotTS := func() int64 {
		return shipped.Load()
	}
	_ = firstTS

	// Concurrent analytical query load: each query reads the freshest
	// primary snapshot available at its arrival (Algorithm 3's qts). A
	// small pool of client goroutines keeps arrivals flowing even while
	// individual queries block on visibility (an open-ish arrival process;
	// a single closed-loop client would stall the whole load behind one
	// long wait).
	var queryWG sync.WaitGroup
	stopQueries := make(chan struct{})
	if exp.Queries > 0 && len(queries) > 0 {
		const clients = 4
		per := exp.Queries / clients
		if per == 0 {
			per = 1
		}
		for c := 0; c < clients; c++ {
			queryWG.Add(1)
			go func(c int) {
				defer queryWG.Done()
				rng := rand.New(rand.NewSource(exp.Seed + 1000 + int64(c)))
				interval := exp.QueryEvery * clients
				for issued := 0; issued < per; issued++ {
					select {
					case <-stopQueries:
						return
					case <-time.After(interval):
					}
					qts := snapshotTS()
					if qts == 0 {
						issued-- // not an arrival yet: nothing committed
						continue
					}
					q := queries[rng.Intn(len(queries))]
					t0 := time.Now()
					r.WaitVisible(qts, q.Tables)
					d := time.Since(t0)
					res.Visibility.Record(d)
					res.PerQuery[q.Name].Record(d)
				}
			}(c)
		}
	}

	r.Start()
	var interval time.Duration
	if exp.PrimaryRate > 0 {
		interval = time.Duration(float64(exp.EpochSize) / exp.PrimaryRate * float64(time.Second))
	}
	// An epoch ships when its last transaction has committed on the
	// primary, i.e. at the *end* boundary of its assembly interval — that
	// is what makes oversized epochs cost freshness (Fig 12).
	next := time.Now()
	for i := range encs {
		if interval > 0 {
			next = next.Add(interval)
			if now := time.Now(); now.Before(next) {
				time.Sleep(next.Sub(now))
			}
		}
		if err := r.Feed(&encs[i]); err != nil {
			close(stopQueries)
			queryWG.Wait()
			r.Stop()
			return nil, err
		}
		shipped.Store(encs[i].LastCommitTS)
	}
	r.Drain()
	elapsed := time.Since(start)
	r.WaitVisible(lastTS, workload.TableIDs(gen.Tables()))
	close(stopQueries)
	queryWG.Wait()
	r.Stop()

	if staged, ok := r.(interface {
		StageTimes() (time.Duration, time.Duration)
	}); ok {
		hot, cold := staged.StageTimes()
		res.HotReplayTime = hot
		res.ColdReplayTime = hot + cold
	} else {
		res.HotReplayTime = elapsed
		res.ColdReplayTime = elapsed
	}

	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", r.Name(), err)
	}
	res.Throughput = metrics.Throughput{Entries: entries, Txns: exp.Txns, Elapsed: elapsed}
	return res, nil
}

// CalibrateRate measures AETS's replay throughput on the experiment
// without query load or pacing and returns the given fraction of it — the
// primary rate at which a visibility experiment keeps the backup loaded
// but not unboundedly behind.
func CalibrateRate(exp Experiment, fraction float64) (float64, error) {
	exp.Queries = 0
	exp.PrimaryRate = 0
	if exp.Txns > 20000 {
		exp.Txns = 20000
	}
	res, err := Run(KindAETS, exp)
	if err != nil {
		return 0, err
	}
	if fraction <= 0 {
		fraction = 0.6
	}
	return res.Throughput.TxnsPerSec() * fraction, nil
}

// RunAll runs the experiment across the given kinds on identical inputs.
func RunAll(kinds []Kind, exp Experiment) ([]*RunResult, error) {
	out := make([]*RunResult, 0, len(kinds))
	for _, k := range kinds {
		r, err := Run(k, exp)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// TPCCRates returns the paper's TPC-C access-rate assignment (§VI-A3): the
// order_line group is accessed twice as often as the
// district/stock/customer/order group.
func TPCCRates(base float64) map[wal.TableID]float64 {
	return map[wal.TableID]float64{
		workload.TPCCDistrict:  base,
		workload.TPCCStock:     base,
		workload.TPCCCustomer:  base,
		workload.TPCCOrder:     base,
		workload.TPCCOrderLine: 2 * base,
	}
}

// CHRates returns per-table rates proportional to how many of the 22 CH
// queries touch each written table; with PerTable grouping this reproduces
// the paper's "each table is assigned to its own group" setup.
func CHRates(gen workload.Generator) map[wal.TableID]float64 {
	counts := make(map[wal.TableID]int)
	written := make(map[wal.TableID]bool)
	for _, t := range gen.Tables() {
		written[t.ID] = true
	}
	for _, q := range gen.Queries() {
		for _, t := range q.Tables {
			if written[t] {
				counts[t]++
			}
		}
	}
	rates := make(map[wal.TableID]float64, len(counts))
	for t, c := range counts {
		rates[t] = float64(c) * 100
	}
	return rates
}

// BusTrackerRates returns the BusTracker hot-table rates at a given time
// slot.
func BusTrackerRates(bt *workload.BusTracker, slot int) map[wal.TableID]float64 {
	return bt.Rates(slot)
}
