package htap

// snapshot.go is the node side of wire-level catch-up and anti-entropy
// (ship.CapSnapshot): cutting transferable snapshots from a live node
// and digesting committed state so two replicas at the same epoch
// cursor can prove — or disprove — that they hold the same data.

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"aets/internal/checkpoint"
	"aets/internal/memtable"
	"aets/internal/wal"
)

// StateDigest returns an order-independent digest of the memtable's
// committed state: for every record, the newest version (key, txn,
// commit timestamp, tombstone flag, columns) is hashed individually
// and the per-record hashes combined commutatively, so shard iteration
// order never matters. Only version-chain heads are digested — Vacuum
// always retains them — which makes the digest insensitive to how
// aggressively either side has pruned history: two replicas drained at
// the same epoch cursor digest equal no matter their GC schedules.
//
// Callers must quiesce replay first (Node.StateDigest drains); racing
// writers would make the result meaningless.
func StateDigest(mt *memtable.Memtable) uint64 {
	return StateDigestWith(mt, nil)
}

// StateDigestWith is StateDigest for columnar nodes: frozen (may be nil)
// resolves records whose chains the compactor emptied — their newest
// version lives in the base segment, and it digests exactly as the chain
// head it used to be. Columns are hashed in ascending-ID order on both
// paths (chains carry WAL order, segments carry ID order), so a columnar
// replica and a row-wise replica at the same cursor digest equal.
func StateDigestWith(mt *memtable.Memtable, frozen checkpoint.FrozenFunc) uint64 {
	ids := mt.Tables()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sum uint64
	var b [8]byte
	var colBuf []wal.Column
	for _, id := range ids {
		mt.Table(id).ScanAny(0, ^uint64(0), func(key uint64, rec *memtable.Record) bool {
			var txn uint64
			var ts int64
			var del bool
			var cols []wal.Column
			if v := rec.Latest(); v != nil {
				txn, ts, del, cols = v.TxnID, v.CommitTS, v.Deleted, v.Columns
			} else if frozen != nil {
				var ok bool
				if txn, ts, del, cols, ok = frozen(id, key); !ok {
					return true
				}
			} else {
				return true
			}
			colBuf = append(colBuf[:0], cols...)
			sortColumns(colBuf)
			h := fnv.New64a()
			binary.LittleEndian.PutUint32(b[:4], uint32(id))
			_, _ = h.Write(b[:4])
			binary.LittleEndian.PutUint64(b[:], key)
			_, _ = h.Write(b[:])
			binary.LittleEndian.PutUint64(b[:], txn)
			_, _ = h.Write(b[:])
			binary.LittleEndian.PutUint64(b[:], uint64(ts))
			_, _ = h.Write(b[:])
			if del {
				_, _ = h.Write([]byte{1})
			} else {
				_, _ = h.Write([]byte{0})
			}
			for _, c := range colBuf {
				binary.LittleEndian.PutUint32(b[:4], c.ID)
				_, _ = h.Write(b[:4])
				binary.LittleEndian.PutUint64(b[:], uint64(len(c.Value)))
				_, _ = h.Write(b[:])
				_, _ = h.Write(c.Value)
			}
			sum += h.Sum64()
			return true
		})
	}
	return sum
}

// sortColumns orders by ID (insertion sort; schema-sized, stable so a
// version carrying duplicate IDs keeps first-occurrence precedence).
func sortColumns(cols []wal.Column) {
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j-1].ID > cols[j].ID; j-- {
			cols[j-1], cols[j] = cols[j], cols[j-1]
		}
	}
}

// StateDigest quiesces replay and digests the node's committed state.
// Concurrent Feeds are excluded for the duration of the scan, so the
// digest reflects a well-defined cursor.
func (n *Node) StateDigest() uint64 {
	n.cutMu.Lock()
	defer n.cutMu.Unlock()
	n.r.Drain()
	var frozen checkpoint.FrozenFunc
	if n.cs != nil {
		frozen = n.cs.Lookup
	}
	return StateDigestWith(n.mt, frozen)
}

// AntiEntropyDigest returns the digest triple a sender ships in a
// DIGEST frame: the cursor it covers (next epoch sequence), the
// visible timestamp at that point, and the state digest. Replay is
// drained first so the digest reflects every fed epoch.
func (n *Node) AntiEntropyDigest() (seq uint64, ts int64, digest uint64) {
	n.cutMu.Lock()
	defer n.cutMu.Unlock()
	n.r.Drain()
	var frozen checkpoint.FrozenFunc
	if n.cs != nil {
		frozen = n.cs.Lookup
	}
	return n.NextSeq(), n.VisibleTS(), StateDigestWith(n.mt, frozen)
}

// NodeSnapshotSource serves ship.SnapshotSource from a live node: each
// call cuts a fresh checkpoint (quiescing replay and excluding
// concurrent feeds for the cut's duration), so the snapshot covers
// exactly the epochs below its cursor — the consistency contract that
// lets the sender retire its pending window at the snapshot cursor and
// the restored replica resume there with no gap.
type NodeSnapshotSource struct {
	// N is the node snapshots are cut from. On a fan-out primary this
	// is the mirror node that applies each epoch before it ships.
	N *Node
	// Dir is where the snapshot is staged; empty uses the system temp
	// directory. The file is unlinked as soon as it is open, so an
	// aborted transfer leaks nothing.
	Dir string
}

// Snapshot cuts a checkpoint to an unlinked temp file and returns it
// positioned at the start.
func (s *NodeSnapshotSource) Snapshot() (uint64, int64, io.ReadCloser, error) {
	f, err := os.CreateTemp(s.Dir, "aets-snap-*.ckpt")
	if err != nil {
		return 0, 0, nil, err
	}
	_ = os.Remove(f.Name())
	meta, err := s.N.Checkpoint(f)
	if err != nil {
		f.Close()
		return 0, 0, nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return 0, 0, nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return 0, 0, nil, err
	}
	return meta.NextEpochSeq(), size, f, nil
}
