package htap

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"aets/internal/alloc"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/predictor"
	"aets/internal/primary"
	"aets/internal/wal"
	"aets/internal/workload"
)

// Strategy selects the thread-allocation policy of the Fig 13 experiment.
type Strategy string

// The three policies compared in Fig 13.
const (
	// StrategyDTGM is full AETS: DTGM-predicted access rates feed the
	// grouping and the λ=log(r) thread allocation.
	StrategyDTGM Strategy = "AETS"
	// StrategyHA is AETS-HA: the trailing five-minute average access rate
	// stands in for the prediction.
	StrategyHA Strategy = "AETS-HA"
	// StrategyNOAC is AETS-NOAC: thread allocation considers only the
	// un-replayed log size (λ=1).
	StrategyNOAC Strategy = "AETS-NOAC"
)

// AdaptiveConfig parameterises the Fig 13 run: BusTracker driven slot by
// slot (one slot = one simulated minute) with time-varying access rates.
type AdaptiveConfig struct {
	Slots          int // measured slots (paper: 25 after 5 warm-up)
	WarmupSlots    int
	TxnsPerSlot    int
	EpochSize      int
	Workers        int
	QueriesPerSlot int
	TrainSlots     int // history slots used to fit DTGM
	DTGMHidden     int // hidden dim (paper: 48); smaller is faster
	DTGMEpochs     int
	Seed           int64
}

func (c *AdaptiveConfig) fill() {
	if c.Slots == 0 {
		c.Slots = 25
	}
	if c.WarmupSlots == 0 {
		c.WarmupSlots = 5
	}
	if c.TxnsPerSlot == 0 {
		c.TxnsPerSlot = 4096
	}
	if c.EpochSize == 0 {
		c.EpochSize = 2048
	}
	if c.QueriesPerSlot == 0 {
		c.QueriesPerSlot = 64
	}
	if c.TrainSlots == 0 {
		c.TrainSlots = 600
	}
	if c.DTGMHidden == 0 {
		c.DTGMHidden = 24
	}
	if c.DTGMEpochs == 0 {
		c.DTGMEpochs = 12
	}
	if c.Seed == 0 {
		c.Seed = 5
	}
}

// AdaptiveResult reports the per-slot mean visibility delay of one policy.
type AdaptiveResult struct {
	Strategy Strategy
	// PerSlotMeanUS is the mean visibility delay (µs) of each measured
	// slot — the Fig 13 series.
	PerSlotMeanUS []float64
}

// Mean returns the overall mean of the per-slot means.
func (r *AdaptiveResult) Mean() float64 {
	if len(r.PerSlotMeanUS) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.PerSlotMeanUS {
		s += v
	}
	return s / float64(len(r.PerSlotMeanUS))
}

// RunAdaptive executes the Fig 13 experiment for one policy: BusTracker
// runs slot by slot, the policy re-predicts table access rates before each
// slot, the engine's plan is rebuilt accordingly, and each slot's queries
// (drawn from the *true* rate distribution) record their visibility delay.
func RunAdaptive(strategy Strategy, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	cfg.fill()
	bt := workload.NewBusTracker()
	allTables := workload.TableIDs(bt.Tables())
	series, hotIDs := bt.RateSeries(cfg.TrainSlots + cfg.WarmupSlots + cfg.Slots)

	// Rate provider per strategy. slot is an absolute index into series.
	var rateAt func(slot int) map[wal.TableID]float64
	urgency := alloc.LogUrgency
	switch strategy {
	case StrategyDTGM:
		dcfg := predictor.DTGMConfig{
			Window: 12, Horizon: 1, Hidden: cfg.DTGMHidden, Layers: 2, Hops: 2,
			Epochs: cfg.DTGMEpochs, Batch: 16, LR: 3e-3, Dropout: 0.2,
			UseGCN: true, Seed: cfg.Seed,
		}
		d := predictor.NewDTGM(bt.AccessGraph(), dcfg)
		if err := d.Fit(series[:cfg.TrainSlots]); err != nil {
			return nil, err
		}
		rateAt = func(slot int) map[wal.TableID]float64 {
			recent := series[maxInt(0, slot-12):slot]
			pred := d.Predict(recent, 1)
			out := make(map[wal.TableID]float64, len(hotIDs))
			for j, id := range hotIDs {
				out[id] = pred[0][j]
			}
			return out
		}
	case StrategyHA:
		rateAt = func(slot int) map[wal.TableID]float64 {
			out := make(map[wal.TableID]float64, len(hotIDs))
			from := maxInt(0, slot-5)
			for j, id := range hotIDs {
				s := 0.0
				for k := from; k < slot; k++ {
					s += series[k][j]
				}
				out[id] = s / float64(maxInt(slot-from, 1))
			}
			return out
		}
	case StrategyNOAC:
		urgency = alloc.NoURgency
		rateAt = func(int) map[wal.TableID]float64 {
			// Grouping still separates hot from cold tables, but every hot
			// group carries the same nominal rate: allocation sees log
			// size only.
			out := make(map[wal.TableID]float64, len(hotIDs))
			for _, id := range hotIDs {
				out[id] = 1
			}
			return out
		}
	default:
		return nil, fmt.Errorf("htap: unknown adaptive strategy %q", strategy)
	}

	p := primary.New(bt, cfg.Seed)
	mt := memtable.New()
	base := cfg.TrainSlots
	engine := NewAETS(mt, plan(bt, allTables, rateAt(base)), Options{
		Workers: cfg.Workers, Urgency: urgency,
	})
	engine.Start()
	defer engine.Stop()

	res := &AdaptiveResult{Strategy: strategy}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	var shipped atomic.Int64
	var seq uint64

	for slot := 0; slot < cfg.WarmupSlots+cfg.Slots; slot++ {
		abs := base + slot
		engine.SetPlan(plan(bt, allTables, rateAt(abs)))

		encs := p.GenerateEncoded(cfg.TxnsPerSlot, cfg.EpochSize)
		trueRates := series[abs]

		// Ship the whole minute's epochs, then issue the minute's queries
		// while replay catches up: each query snapshots the freshest
		// shipped timestamp (Algorithm 3's qts) and its visibility delay is
		// the remaining replay time of the groups it touches — which is
		// exactly what the thread-allocation policy controls.
		for i := range encs {
			encs[i].Seq = seq
			seq++
			if err := engine.Feed(&encs[i]); err != nil {
				return nil, err
			}
			shipped.Store(encs[i].LastCommitTS)
		}

		delays := metrics.NewExactDelayRecorder()
		queryDone := make(chan struct{})
		go func() {
			defer close(queryDone)
			for q := 0; q < cfg.QueriesPerSlot; q++ {
				table := sampleHot(rng, hotIDs, trueRates)
				qts := shipped.Load()
				t0 := time.Now()
				engine.WaitVisible(qts, []wal.TableID{table})
				delays.Record(time.Since(t0))
				time.Sleep(20 * time.Microsecond)
			}
		}()

		engine.Drain()
		<-queryDone

		if slot >= cfg.WarmupSlots {
			res.PerSlotMeanUS = append(res.PerSlotMeanUS, delays.Mean())
		}
	}
	if err := engine.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// plan rebuilds the dynamic BusTracker grouping from predicted rates:
// DBSCAN clusters of similarly rated hot tables, singleton cold groups
// ("the grouping is determined dynamically", §VI-A3).
func plan(bt *workload.BusTracker, all []wal.TableID, rates map[wal.TableID]float64) *grouping.Plan {
	return grouping.Build(rates, all, grouping.Options{Eps: 0.3, MinPts: 2})
}

func sampleHot(rng *rand.Rand, ids []wal.TableID, rates []float64) wal.TableID {
	total := 0.0
	for _, r := range rates {
		total += r
	}
	if total <= 0 {
		return ids[rng.Intn(len(ids))]
	}
	x := rng.Float64() * total
	for j, r := range rates {
		x -= r
		if x <= 0 {
			return ids[j]
		}
	}
	return ids[len(ids)-1]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
