package htap

// host.go wraps a replaceable Node behind the ship applier contracts.
// A bare Node cannot restore a snapshot into itself — a restore builds
// a whole new node from the checkpoint stream — so catch-up-capable
// deployments without a recovery supervisor feed the stream through a
// NodeHost: the host swaps in the restored node atomically, and the
// old node keeps answering queries until the instant of the swap.

import (
	"fmt"
	"io"
	"sync/atomic"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/query"
	"aets/internal/ship"
	"aets/internal/wal"
)

// NodeHost is a ship.SnapshotApplier (and DigestApplier) over a
// replaceable node. Feed/Heartbeat delegate to the current node;
// RestoreSnapshot replaces it wholesale. All methods are safe for the
// receiver goroutine racing query traffic on Node().
type NodeHost struct {
	kind Kind
	plan *grouping.Plan
	opts Options
	node atomic.Pointer[Node]
}

var (
	_ ship.SnapshotApplier = (*NodeHost)(nil)
	_ ship.DigestApplier   = (*NodeHost)(nil)
)

// NewNodeHost builds a host around a fresh node.
func NewNodeHost(kind Kind, plan *grouping.Plan, opts Options) (*NodeHost, error) {
	n, err := NewNode(kind, plan, opts)
	if err != nil {
		return nil, err
	}
	return HostNode(n, kind, plan, opts), nil
}

// HostNode wraps an existing node (fresh, or restored from a local
// checkpoint) in a host. The kind/plan/opts triple must match how n was
// built: it is the recipe for rebuilding the node from a wire snapshot.
func HostNode(n *Node, kind Kind, plan *grouping.Plan, opts Options) *NodeHost {
	h := &NodeHost{kind: kind, plan: plan, opts: opts}
	h.node.Store(n)
	return h
}

// ShipReceiver returns a replication receiver feeding the host's
// current node, snapshot-capable: because the host is a
// ship.SnapshotApplier, the receiver negotiates CapSnapshot and a
// too-stale cursor is answered with a wire snapshot instead of a
// terminal resume error. Unless set, the resume cursor starts at the
// current node's next expected epoch.
func (h *NodeHost) ShipReceiver(cfg ship.ReceiverConfig) (*ship.Receiver, error) {
	cfg.Applier = h
	if cfg.Resume == 0 {
		cfg.Resume = h.NextSeq()
	}
	return ship.NewReceiver(cfg)
}

// Node returns the current node. Callers hold the pointer across a
// query; a concurrent restore swaps the host but never tears down a
// node mid-read (the old node is closed, which drains, only after the
// swap).
func (h *NodeHost) Node() *Node { return h.node.Load() }

// Feed applies one epoch to the current node.
func (h *NodeHost) Feed(enc *epoch.Encoded) error { return h.node.Load().Feed(enc) }

// Heartbeat advances visibility on the current node.
func (h *NodeHost) Heartbeat(ts int64) error { return h.node.Load().Heartbeat(ts) }

// NextSeq returns the current node's resume cursor.
func (h *NodeHost) NextSeq() uint64 { return h.node.Load().NextSeq() }

// Query proxies a snapshot read to the current node.
func (h *NodeHost) Query(qts int64, tables ...wal.TableID) *query.Snapshot {
	return h.node.Load().Query(qts, tables...)
}

// RestoreSnapshot builds a fresh node from the checkpoint stream and
// swaps it in. The stream is fully read and validated (checkpoint CRC)
// before anything is installed: on error the prior node is untouched
// and keeps serving. After a nil return the host's cursor is cursor.
func (h *NodeHost) RestoreSnapshot(cursor uint64, _ int64, r io.Reader) error {
	n, meta, err := RestoreNode(r, h.kind, h.plan, h.opts)
	if err != nil {
		return err
	}
	if meta.NextEpochSeq() != cursor {
		_ = n.Close()
		return fmt.Errorf("htap: snapshot cursor %d, checkpoint resumes at %d", cursor, meta.NextEpochSeq())
	}
	if old := h.node.Swap(n); old != nil {
		_ = old.Close()
	}
	return nil
}

// VerifyDigest compares the current node's committed-state digest with
// the sender's. Only digests aligned with this node's cursor compare;
// anything else is vacuously fine (the receiver already filters, this
// guards direct callers).
func (h *NodeHost) VerifyDigest(seq uint64, _ int64, digest uint64) error {
	n := h.node.Load()
	if n == nil || n.NextSeq() != seq {
		return nil
	}
	if d := n.StateDigest(); d != digest {
		return fmt.Errorf("%w: local %016x, sender %016x at cursor %d",
			ship.ErrDigestMismatch, d, digest, seq)
	}
	return nil
}

// Close tears down the current node.
func (h *NodeHost) Close() error {
	if n := h.node.Swap(nil); n != nil {
		return n.Close()
	}
	return nil
}
