// Package htap is the top-level façade of the library: it wires the backup
// node together (Memtable, group plan, replayer implementation) and
// provides the experiment harness used by the benchmarks, the examples and
// cmd/aetsbench to reproduce the paper's tables and figures.
package htap

import (
	"fmt"
	"time"

	"aets/internal/alloc"
	"aets/internal/baselines"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/metrics"
	"aets/internal/replay"
	"aets/internal/wal"
)

// Replayer is the common surface of the four replay algorithms: the AETS
// engine, ungrouped TPLR, and the ATR and C5 baselines.
type Replayer interface {
	// Name returns the algorithm name.
	Name() string
	// Start launches the replayer's goroutines.
	Start()
	// Feed enqueues one encoded epoch; epochs must arrive in order. It
	// returns an error if the replayer was never started or already
	// stopped.
	Feed(*epoch.Encoded) error
	// Drain blocks until all fed epochs are replayed.
	Drain()
	// Stop drains and terminates the replayer.
	Stop()
	// WaitVisible blocks until data committed at or before qts in the given
	// tables is visible to readers (Algorithm 3 or the baseline's
	// equivalent snapshot rule).
	WaitVisible(qts int64, tables []wal.TableID)
	// GlobalTS returns the current global visible timestamp.
	GlobalTS() int64
	// Err returns the first fatal replay error, if any.
	Err() error
	// Memtable returns the backup storage engine.
	Memtable() *memtable.Memtable
}

// Kind selects a replay algorithm.
type Kind string

// The four algorithms of the evaluation.
const (
	KindAETS Kind = "aets"
	KindTPLR Kind = "tplr"
	KindATR  Kind = "atr"
	KindC5   Kind = "c5"
)

// Kinds lists all algorithms in the paper's presentation order.
var Kinds = []Kind{KindAETS, KindATR, KindC5, KindTPLR}

// Options configures a replayer.
type Options struct {
	// Workers is the replay thread budget T (default GOMAXPROCS).
	Workers int
	// Urgency is AETS's thread-allocation urgency λ (default log-rate).
	Urgency alloc.UrgencyFunc
	// SnapshotPeriod is C5's snapshot advance period (default 5 ms).
	SnapshotPeriod time.Duration
	// Pipeline is the replay pipeline depth for AETS/TPLR: how many epochs
	// may be in flight at once (0 = serial, one epoch at a time).
	Pipeline int
	// Breakdown, when non-nil, records the Table II phase timing
	// (AETS/TPLR only).
	Breakdown *metrics.Breakdown
	// Metrics receives the replayer's operational metrics (counters,
	// gauges, latency histograms). Defaults to metrics.Default; tests
	// pass their own registry to scrape in isolation.
	Metrics *metrics.Registry
	// Columnar equips the node with a columnar store: epoch-aligned
	// compaction freezes cold record chains into immutable column-major
	// segments and queries are planned as segment + delta merges. The
	// compactor only runs when driven (Node.Compact or StartCompactLoop),
	// so a columnar node with no cadence behaves exactly row-wise.
	Columnar bool
}

// NewReplayer builds a replayer of the given kind over mt. plan is the
// table-group plan; ATR and C5 ignore it (they are ungrouped), TPLR
// collapses it to a single group.
func NewReplayer(kind Kind, mt *memtable.Memtable, plan *grouping.Plan, opts Options) (Replayer, error) {
	// All four algorithms funnel entries through the sharded memtable
	// index; expose its shard-lock wait distribution regardless of kind.
	// (replay.New wires the same histogram for AETS/TPLR — same registry,
	// same histogram, so the double wiring is idempotent.)
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	mt.SetWaitObserver(reg.Histogram("memtable_shard_wait_ns"))
	switch kind {
	case KindAETS:
		return NewAETS(mt, plan, opts), nil
	case KindTPLR:
		single := grouping.SingleGroup(planTables(plan))
		e := replay.New("TPLR", mt, single, replay.Config{
			Workers: opts.Workers, Urgency: opts.Urgency,
			TwoStage: false, Breakdown: opts.Breakdown,
			Pipeline: opts.Pipeline, Registry: opts.Metrics,
		})
		return engineReplayer{e, mt}, nil
	case KindATR:
		return baselines.NewATR(mt, opts.Workers), nil
	case KindC5:
		return baselines.NewC5(mt, opts.Workers, opts.SnapshotPeriod), nil
	default:
		return nil, fmt.Errorf("htap: unknown replayer kind %q", kind)
	}
}

// NewAETS builds the full AETS engine (two-stage, grouped, adaptive).
// The returned value also satisfies Replayer.
func NewAETS(mt *memtable.Memtable, plan *grouping.Plan, opts Options) *AETSEngine {
	e := replay.New("AETS", mt, plan, replay.Config{
		Workers: opts.Workers, Urgency: opts.Urgency,
		TwoStage: true, Breakdown: opts.Breakdown,
		Pipeline: opts.Pipeline, Registry: opts.Metrics,
	})
	return &AETSEngine{Engine: e, mt: mt}
}

// AETSEngine wraps the replay engine with its Memtable so it satisfies
// Replayer while still exposing SetPlan/GroupTS for adaptive experiments.
type AETSEngine struct {
	*replay.Engine
	mt *memtable.Memtable
}

// Memtable implements Replayer.
func (e *AETSEngine) Memtable() *memtable.Memtable { return e.mt }

// engineReplayer adapts a plain replay.Engine (TPLR mode) to Replayer.
type engineReplayer struct {
	*replay.Engine
	m *memtable.Memtable
}

// Memtable implements Replayer.
func (e engineReplayer) Memtable() *memtable.Memtable { return e.m }

func planTables(p *grouping.Plan) []wal.TableID {
	var out []wal.TableID
	for _, g := range p.Groups {
		out = append(out, g.Tables...)
	}
	return out
}
