package htap

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/reference"
	"aets/internal/wal"
)

// chaosTxns builds an adversarial random workload: many tables, skewed
// keys, same-transaction duplicate-row writes, deletes, and single-row
// hotspots — the patterns that break ordering protocols.
func chaosTxns(rng *rand.Rand, nTxns, nTables, keySpace int) []wal.Txn {
	txns := make([]wal.Txn, nTxns)
	ts := int64(0)
	writeCount := make(map[[2]uint64]uint64)
	lastWriter := make(map[[2]uint64]uint64)
	for i := range txns {
		id := uint64(i + 1)
		ts += 1 + rng.Int63n(50)
		t := wal.Txn{ID: id, CommitTS: ts}
		n := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			table := wal.TableID(1 + rng.Intn(nTables))
			var key uint64
			switch rng.Intn(3) {
			case 0:
				key = 7 // hotspot row
			case 1:
				key = uint64(1 + rng.Intn(8)) // warm band
			default:
				key = uint64(1 + rng.Intn(keySpace))
			}
			op := wal.TypeUpdate
			switch rng.Intn(10) {
			case 0:
				op = wal.TypeDelete
			case 1:
				op = wal.TypeInsert
			}
			ref := [2]uint64{uint64(table), key}
			e := wal.Entry{
				Type: op, TxnID: id, Timestamp: ts, Table: table, RowKey: key,
				PrevTxn: lastWriter[ref], WriteSeq: writeCount[ref],
			}
			if op != wal.TypeDelete {
				e.Columns = []wal.Column{{ID: uint32(j), Value: []byte{byte(i), byte(j)}}}
			}
			lastWriter[ref] = id
			writeCount[ref]++
			t.Entries = append(t.Entries, e)
		}
		txns[i] = t
	}
	return txns
}

// TestChaosEquivalenceQuick replays random adversarial workloads through
// all four algorithms and demands version-for-version equality with the
// serial reference.
func TestChaosEquivalenceQuick(t *testing.T) {
	tables := []wal.TableID{1, 2, 3, 4, 5}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		txns := chaosTxns(rng, 300+rng.Intn(500), len(tables), 200)
		epochSize := 1 << (3 + rng.Intn(5)) // 8..128

		ref := memtable.New()
		reference.Apply(ref, txns)

		rates := map[wal.TableID]float64{1: 1000, 2: 500}
		plan := grouping.Build(rates, tables, grouping.Options{PerTable: true})

		for _, k := range Kinds {
			mt := memtable.New()
			r, err := NewReplayer(k, mt, plan, Options{Workers: 3})
			if err != nil {
				t.Log(err)
				return false
			}
			r.Start()
			for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, epochSize)) {
				enc := enc
				r.Feed(&enc)
			}
			r.Drain()
			r.Stop()
			if err := r.Err(); err != nil {
				t.Logf("%s: %v", k, err)
				return false
			}
			if err := reference.Equal(ref, mt, tables); err != nil {
				t.Logf("%s (seed %d, epoch %d): %v", k, seed, epochSize, err)
				return false
			}
			if err := reference.CheckChains(mt, tables); err != nil {
				t.Logf("%s: %v", k, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptEpochFailsCleanly feeds a corrupted epoch and expects every
// replayer to surface an error without deadlocking Drain.
func TestCorruptEpochFailsCleanly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	txns := chaosTxns(rng, 50, 3, 50)
	encs := epoch.EncodeAll(epoch.MustSplit(txns, 25))
	tables := []wal.TableID{1, 2, 3}
	plan := grouping.SingleGroup(tables)

	for _, k := range Kinds {
		bad := make([]byte, len(encs[1].Buf))
		copy(bad, encs[1].Buf)
		// Truncate mid-frame: framing breaks for every parser.
		bad = bad[:len(bad)-3]
		corrupt := encs[1]
		corrupt.Buf = bad

		r, err := NewReplayer(k, memtable.New(), plan, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		first := encs[0]
		r.Feed(&first)
		r.Feed(&corrupt)
		r.Drain()
		r.Stop()
		if r.Err() == nil {
			t.Fatalf("%s: corrupted epoch accepted silently", k)
		}
	}
}

// TestPacedRunRecordsLowDelays verifies the pacing path: at a primary rate
// well below replay throughput, visibility delays must be far smaller than
// the unpaced backlog regime.
func TestPacedRunRecordsLowDelays(t *testing.T) {
	exp := smallTPCC(60)
	rate, err := CalibrateRate(exp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatal("calibrated rate must be positive")
	}
	exp.PrimaryRate = rate
	res, err := Run(KindAETS, exp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visibility.Count() == 0 {
		t.Fatal("paced run recorded no queries")
	}
	// The paced run must take at least Txns/rate seconds.
	minElapsed := float64(exp.Txns) / rate
	if res.Throughput.Elapsed.Seconds() < minElapsed*0.9 {
		t.Fatalf("paced run finished in %v, expected ≥ %.2fs", res.Throughput.Elapsed, minElapsed)
	}
}

// TestHeartbeatInterleavedWithData mixes dummy heartbeat epochs into the
// stream; replay must stay correct and the global timestamp monotone.
func TestHeartbeatInterleavedWithData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	txns := chaosTxns(rng, 200, 3, 100)
	tables := []wal.TableID{1, 2, 3}
	plan := grouping.SingleGroup(tables)
	ref := memtable.New()
	reference.Apply(ref, txns)

	for _, k := range Kinds {
		mt := memtable.New()
		r, err := NewReplayer(k, mt, plan, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		seq := uint64(0)
		for _, enc := range epoch.EncodeAll(epoch.MustSplit(txns, 50)) {
			enc := enc
			enc.Seq = seq
			seq++
			r.Feed(&enc)
			hb := epoch.Encoded{Seq: seq, LastCommitTS: enc.LastCommitTS + 1}
			seq++
			r.Feed(&hb)
		}
		r.Drain()
		if err := r.Err(); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := reference.Equal(ref, mt, tables); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		// C5's snapshot advances on its periodic watermark, so allow a
		// bounded wait rather than an instantaneous check.
		last := txns[len(txns)-1].CommitTS
		done := make(chan struct{})
		go func() {
			r.WaitVisible(last+1, nil)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("%s: heartbeat TS never became visible", k)
		}
		r.Stop()
	}
}
