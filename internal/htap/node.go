package htap

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/checkpoint"
	"aets/internal/colstore"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/memtable"
	"aets/internal/query"
	"aets/internal/wal"
)

// Node is a complete backup node: a replayer over an MVCC Memtable, a
// snapshot query executor, version-chain garbage collection, and
// checkpoint/restore — everything a replica deployment needs behind one
// handle.
type Node struct {
	mt *memtable.Memtable
	r  Replayer
	ex *query.Executor

	// cs/comp are the columnar side (Options.Columnar); nil on a plain
	// row-wise node.
	cs   *colstore.Store
	comp *colstore.Compactor

	// cutMu serializes state cuts — Checkpoint, StateDigest,
	// AntiEntropyDigest — against Feed. A cut must be atomic with
	// respect to the epoch stream: drain, read the cursor and walk the
	// memtable with no feed landing in between, or the image claims a
	// cursor whose epochs it only partially contains. A replica restored
	// from such a torn snapshot resumes past data it never got — a
	// silent, permanent gap in its version history. Feed holds it for
	// the enqueue only, so steady-state cost is one uncontended lock;
	// during a cut the producer briefly backpressures instead of
	// tearing the image.
	cutMu sync.Mutex

	mu        sync.Mutex
	lastSeq   uint64
	lastTxnID uint64
	fed       bool

	// primaryTS is the newest primary commit watermark this node has seen
	// (fed epochs and heartbeats). replay lag = primaryTS - VisibleTS.
	primaryTS atomic.Int64
}

// NewNode builds a backup node with the given replay algorithm and plan.
func NewNode(kind Kind, plan *grouping.Plan, opts Options) (*Node, error) {
	mt := memtable.New()
	return newNodeWith(mt, kind, plan, opts)
}

// RestoreNode rebuilds a node from a checkpoint stream. The returned meta
// tells the caller which epoch to resume feeding from (Meta.NextEpochSeq).
func RestoreNode(src io.Reader, kind Kind, plan *grouping.Plan, opts Options) (*Node, checkpoint.Meta, error) {
	mt, meta, err := checkpoint.Read(src)
	if err != nil {
		return nil, meta, err
	}
	n, err := newNodeWith(mt, kind, plan, opts)
	if err != nil {
		return nil, meta, err
	}
	n.lastSeq = meta.LastEpochSeq
	n.lastTxnID = meta.LastTxnID
	// Fed-ness must round-trip: a checkpoint of a never-fed node restores
	// to a node whose resume cursor is still epoch 0, not epoch 1.
	n.fed = meta.Fed
	n.advancePrimaryTS(meta.LastCommitTS)
	// Make the restored state immediately visible: everything up to the
	// checkpoint watermark is present.
	hb := epoch.Encoded{Seq: meta.LastEpochSeq, LastCommitTS: meta.LastCommitTS}
	if err := n.r.Feed(&hb); err != nil {
		return nil, meta, err
	}
	n.r.Drain()
	return n, meta, nil
}

func newNodeWith(mt *memtable.Memtable, kind Kind, plan *grouping.Plan, opts Options) (*Node, error) {
	r, err := NewReplayer(kind, mt, plan, opts)
	if err != nil {
		return nil, err
	}
	n := &Node{mt: mt, r: r}
	if opts.Columnar {
		n.cs = colstore.NewStore()
		n.comp = colstore.NewCompactor(mt, n.cs)
		n.ex = query.NewExecutorWith(mt, r, n.cs)
	} else {
		n.ex = query.NewExecutor(mt, r)
	}
	n.r.Start()
	return n, nil
}

// Feed enqueues one encoded epoch for replay. It fails only if the node
// was already closed.
func (n *Node) Feed(enc *epoch.Encoded) error {
	n.cutMu.Lock()
	defer n.cutMu.Unlock()
	n.mu.Lock()
	n.lastSeq = enc.Seq
	n.fed = true
	if enc.TxnCount > 0 {
		n.lastTxnID = enc.LastTxnID
	}
	n.mu.Unlock()
	n.advancePrimaryTS(enc.LastCommitTS)
	return n.r.Feed(enc)
}

// Heartbeat feeds a dummy epoch carrying only the primary's current
// commit timestamp, advancing visibility on an idle stream (paper
// §V-B) without consuming an epoch sequence number — the replication
// resume cursor is untouched.
func (n *Node) Heartbeat(ts int64) error {
	n.mu.Lock()
	seq := n.lastSeq
	n.mu.Unlock()
	n.advancePrimaryTS(ts)
	return n.r.Feed(&epoch.Encoded{Seq: seq, LastCommitTS: ts})
}

func (n *Node) advancePrimaryTS(ts int64) {
	for {
		cur := n.primaryTS.Load()
		if cur >= ts || n.primaryTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// PrimaryTS returns the newest primary commit watermark the node has seen
// through fed epochs and heartbeats — the "how fresh could I be" clock.
func (n *Node) PrimaryTS() int64 { return n.primaryTS.Load() }

// ReplayLag returns how far replay visibility trails the primary's
// watermark, in commit-timestamp units (0 when fully caught up).
func (n *Node) ReplayLag() int64 {
	lag := n.PrimaryTS() - n.VisibleTS()
	if lag < 0 {
		return 0
	}
	return lag
}

// NextSeq returns the next epoch sequence number the node expects: 0 on
// a fresh node, last fed seq + 1 otherwise. This is the replication
// resume cursor a reconnecting primary is told in the handshake.
func (n *Node) NextSeq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.fed {
		return 0
	}
	return n.lastSeq + 1
}

// Drain blocks until all fed epochs are replayed.
func (n *Node) Drain() { n.r.Drain() }

// Close drains and stops the node.
func (n *Node) Close() error {
	n.r.Stop()
	return n.r.Err()
}

// Err returns the first fatal replay error.
func (n *Node) Err() error { return n.r.Err() }

// VisibleTS returns the node's global visible timestamp.
func (n *Node) VisibleTS() int64 { return n.r.GlobalTS() }

// Query begins a snapshot read at qts over the given tables, blocking per
// Algorithm 3 until the snapshot is visible. qts ≤ 0 reads the freshest
// currently visible state without blocking.
func (n *Node) Query(qts int64, tables ...wal.TableID) *query.Snapshot {
	return n.ex.Begin(qts, tables...)
}

// Vacuum prunes record versions older than the given watermark and returns
// the number removed. Callers must not run queries at snapshots below the
// watermark afterwards; the node's visible timestamp is always a safe
// choice for "retain only what future queries can request".
func (n *Node) Vacuum(watermark int64) int {
	return n.mt.Vacuum(watermark)
}

// Colstore returns the node's columnar store, or nil on a row-wise node.
func (n *Node) Colstore() *colstore.Store { return n.cs }

// Compact runs one columnar compaction pass at the given watermark and
// returns the number of rows frozen. Same safety contract as Vacuum: no
// active or future query may read below the watermark. No-op (returns 0)
// on a row-wise node.
func (n *Node) Compact(watermark int64) int {
	if n.comp == nil {
		return 0
	}
	return n.comp.RunOnce(watermark)
}

// StartCompactLoop freezes chains older than `retention` behind the
// visible timestamp every `every` — the columnar mirror of
// StartVacuumLoop, sharing its watermark contract and timestamp domain.
// It returns a stop function; on a row-wise node the loop is a no-op.
func (n *Node) StartCompactLoop(every time.Duration, retention int64) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		if n.comp == nil {
			return
		}
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if ts := n.r.GlobalTS() - retention; ts > 0 {
					n.comp.RunOnce(ts)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Checkpoint quiesces replay (Drain) and writes the node's state to w. The
// recorded meta points at the last fed epoch, so a restore can resume the
// stream at LastEpochSeq+1. The cut excludes concurrent Feeds (cutMu):
// cursor and image always agree, even when the node is a live fan-out
// mirror being fed while a peer's sender cuts a catch-up snapshot.
func (n *Node) Checkpoint(w io.Writer) (checkpoint.Meta, error) {
	n.cutMu.Lock()
	defer n.cutMu.Unlock()
	n.r.Drain()
	if err := n.r.Err(); err != nil {
		return checkpoint.Meta{}, fmt.Errorf("htap: cannot checkpoint a failed node: %w", err)
	}
	n.mu.Lock()
	meta := checkpoint.Meta{
		LastEpochSeq: n.lastSeq,
		LastTxnID:    n.lastTxnID,
		LastCommitTS: n.r.GlobalTS(),
		Fed:          n.fed,
	}
	n.mu.Unlock()
	// On a columnar node the base segments hold history the compactor
	// moved out of the record chains; the checkpoint must cover it or a
	// restore silently loses frozen columns.
	var frozen checkpoint.FrozenFunc
	if n.cs != nil {
		frozen = n.cs.Lookup
	}
	return meta, checkpoint.WriteWith(w, n.mt, meta, frozen)
}

// Memtable exposes the underlying storage (read-mostly helpers, tests).
func (n *Node) Memtable() *memtable.Memtable { return n.mt }

// StartVacuumLoop prunes versions older than `retention` behind the
// visible timestamp every `every`. It returns a stop function. Timestamps
// are in the log's commit-timestamp domain, so retention is expressed
// there too (with the default primary clock, 1 unit = 1 ns of virtual
// time, 1000 units per transaction).
func (n *Node) StartVacuumLoop(every time.Duration, retention int64) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if ts := n.r.GlobalTS() - retention; ts > 0 {
					n.mt.Vacuum(ts)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
