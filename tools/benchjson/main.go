// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark results can be archived and diffed
// by CI (`make bench-json` writes BENCH_replay.json with it). Context
// lines (goos, goarch, pkg, cpu) are captured alongside the per-benchmark
// metric pairs; any "<value> <unit>" pair emitted via b.ReportMetric comes
// through untouched.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Context map[string]string `json:"context"`
	Results []result          `json:"results"`
}

func main() {
	out := doc{Context: map[string]string{}, Results: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			f := strings.Fields(line)
			if len(f) < 2 {
				continue
			}
			iters, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				continue
			}
			r := result{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
			for i := 2; i+1 < len(f); i += 2 {
				v, err := strconv.ParseFloat(f[i], 64)
				if err != nil {
					continue
				}
				r.Metrics[f[i+1]] = v
			}
			out.Results = append(out.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
