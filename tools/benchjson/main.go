// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark results can be archived and diffed
// by CI (`make bench-json` writes BENCH_replay.json with it). Context
// lines (goos, goarch, pkg, cpu) are captured alongside the per-benchmark
// metric pairs; any "<value> <unit>" pair emitted via b.ReportMetric comes
// through untouched.
//
// With -diff OLD.json the fresh run on stdin is instead compared against
// the archived document: one line per benchmark with old → new ns/op,
// B/op and allocs/op and the relative change (`make bench-diff` pipes the
// live benchmarks through this against the checked-in BENCH_*.json).
// Benchmark names are matched with any trailing -N GOMAXPROCS suffix
// stripped, so runs from hosts with different core counts still line up.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type doc struct {
	Context map[string]string `json:"context"`
	Results []result          `json:"results"`
}

// parse reads `go test -bench` text output into a doc.
func parse(r io.Reader) (doc, error) {
	out := doc{Context: map[string]string{}, Results: []result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			out.Context[k] = strings.TrimSpace(v)
		case strings.HasPrefix(line, "Benchmark"):
			f := strings.Fields(line)
			if len(f) < 2 {
				continue
			}
			iters, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				continue
			}
			r := result{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
			for i := 2; i+1 < len(f); i += 2 {
				v, err := strconv.ParseFloat(f[i], 64)
				if err != nil {
					continue
				}
				r.Metrics[f[i+1]] = v
			}
			out.Results = append(out.Results, r)
		}
	}
	return out, sc.Err()
}

// gomaxprocsSuffix is the trailing -N the bench runner appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// delta formats "old → new (±x%)" for one metric, or a placeholder when a
// side is missing. Integral metrics print without decimals.
func delta(oldM, newM map[string]float64, unit string) string {
	ov, ook := oldM[unit]
	nv, nok := newM[unit]
	fmtv := func(v float64) string {
		if v == float64(int64(v)) {
			return strconv.FormatInt(int64(v), 10)
		}
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	switch {
	case !ook && !nok:
		return "-"
	case !ook:
		return fmtv(nv) + " (new)"
	case !nok:
		return fmtv(ov) + " (gone)"
	}
	var rel string
	switch {
	case ov == nv:
		rel = "±0%"
	case ov == 0:
		rel = "+inf"
	default:
		rel = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
	}
	return fmt.Sprintf("%s → %s (%s)", fmtv(ov), fmtv(nv), rel)
}

// diff prints a per-benchmark comparison of fresh against the archive and
// reports whether any benchmark regressed ns/op by more than warnPct.
func diff(w io.Writer, archived, fresh doc, warnPct float64) bool {
	old := make(map[string]result, len(archived.Results))
	for _, r := range archived.Results {
		old[normalize(r.Name)] = r
	}
	width := len("benchmark")
	for _, r := range fresh.Results {
		if n := len(normalize(r.Name)); n > width {
			width = n
		}
	}
	regressed := false
	seen := make(map[string]bool, len(fresh.Results))
	for _, r := range fresh.Results {
		name := normalize(r.Name)
		seen[name] = true
		o := old[name] // zero value (nil Metrics) when new: delta says "(new)"
		mark := ""
		if ov, nv := o.Metrics["ns/op"], r.Metrics["ns/op"]; ov > 0 && nv > ov*(1+warnPct/100) {
			mark = "  <-- regression"
			regressed = true
		}
		fmt.Fprintf(w, "%-*s  ns/op %s  B/op %s  allocs/op %s%s\n",
			width, name,
			delta(o.Metrics, r.Metrics, "ns/op"),
			delta(o.Metrics, r.Metrics, "B/op"),
			delta(o.Metrics, r.Metrics, "allocs/op"),
			mark)
	}
	var gone []string
	for name := range old {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Fprintf(w, "%-*s  not in this run\n", width, name)
	}
	return regressed
}

func main() {
	diffPath := flag.String("diff", "", "archived benchjson JSON to compare the run on stdin against")
	warnPct := flag.Float64("warn", 25, "with -diff, flag benchmarks whose ns/op grew by more than this percentage")
	flag.Parse()

	fresh, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *diffPath != "" {
		raw, err := os.ReadFile(*diffPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var archived doc
		if err := json.Unmarshal(raw, &archived); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *diffPath, err)
			os.Exit(1)
		}
		// Regressions are flagged inline but do not fail the command:
		// bench numbers on shared CI hosts are too noisy for a hard gate.
		diff(os.Stdout, archived, fresh, *warnPct)
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fresh); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
