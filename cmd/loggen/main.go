// Command loggen generates a value-log replication stream from one of the
// benchmark workloads and writes it to a file (or stdout) in the wire
// format, for inspection, archival or replay by cmd/replayd.
//
// Usage:
//
//	loggen -workload tpcc -txns 10000 -o tpcc.wal
//	loggen -workload bustracker -txns 5000 -dump | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"aets/internal/primary"
	"aets/internal/wal"
	"aets/internal/workload"
)

func main() {
	var (
		name  = flag.String("workload", "tpcc", "workload: tpcc, chbench, seats, bustracker")
		txns  = flag.Int("txns", 10000, "number of transactions to generate")
		sf    = flag.Int("sf", 20, "scale factor (tpcc/chbench)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
		dump  = flag.Bool("dump", false, "print a human-readable dump instead of binary")
		epoch = flag.Int("epoch", 2048, "epoch size in transactions (affects LSN framing only)")
	)
	flag.Parse()

	var gen workload.Generator
	switch *name {
	case "tpcc":
		gen = workload.NewTPCC(*sf)
	case "chbench":
		gen = workload.NewCHBench(*sf)
	case "seats":
		gen = workload.NewSEATS()
	case "bustracker":
		gen = workload.NewBusTracker()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}

	p := primary.New(gen, *seed)
	encs := p.GenerateEncoded(*txns, *epoch)

	if *dump {
		for _, enc := range encs {
			entries, err := wal.DecodeStream(enc.Buf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, e := range entries {
				switch e.Type {
				case wal.TypeBegin, wal.TypeCommit:
					fmt.Fprintf(w, "lsn=%-8d %-6s txn=%d ts=%d\n", e.LSN, e.Type, e.TxnID, e.Timestamp)
				default:
					fmt.Fprintf(w, "lsn=%-8d %-6s txn=%d table=%d row=%d prev=%d cols=%d\n",
						e.LSN, e.Type, e.TxnID, e.Table, e.RowKey, e.PrevTxn, len(e.Columns))
				}
			}
		}
		return
	}

	var total int
	for _, enc := range encs {
		n, err := w.Write(enc.Buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total += n
	}
	fmt.Fprintf(os.Stderr, "wrote %d epochs, %d txns, %d bytes\n", len(encs), *txns, total)
}
