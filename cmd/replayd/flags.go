package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"aets/internal/htap"
	"aets/internal/recovery"
)

// All four modes parse with ContinueOnError and validate every flag
// combination up front, so a bad invocation dies with a usage error
// before any socket is opened or epoch generated — never as a mid-run
// panic. The parse functions are separated from the run functions so
// the validation table is testable without side effects.

// usageError tags a validation failure so main can exit with the
// conventional usage status (2) instead of the runtime-failure status.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

// knownWorkload mirrors workloadPlan's cases without building the
// generator.
func knownWorkload(name string) bool {
	switch name {
	case "tpcc", "chbench", "seats", "bustracker":
		return true
	}
	return false
}

func knownAlgo(name string) bool {
	for _, k := range htap.Kinds {
		if string(k) == name {
			return true
		}
	}
	return false
}

type primaryFlags struct {
	connect, workload     string
	txns, epochSize       int
	seed                  int64
	rate, window, retries int
	hb                    time.Duration
	httpAddr              string
	compress              bool
	applyProfiles         func()
}

func parsePrimaryFlags(args []string) (*primaryFlags, error) {
	fs := flag.NewFlagSet("primary", flag.ContinueOnError)
	c := &primaryFlags{}
	fs.StringVar(&c.connect, "connect", "localhost:7070", "backup address")
	fs.StringVar(&c.workload, "workload", "tpcc", "workload: tpcc, chbench, seats, bustracker")
	fs.IntVar(&c.txns, "txns", 50000, "transactions to ship")
	fs.IntVar(&c.epochSize, "epoch", 2048, "epoch size")
	fs.Int64Var(&c.seed, "seed", 1, "seed")
	fs.IntVar(&c.rate, "rate", 0, "epochs per second pacing (0 = as fast as possible)")
	fs.IntVar(&c.window, "window", 32, "max in-flight (unacked) epochs before Send blocks")
	fs.DurationVar(&c.hb, "hb", 500*time.Millisecond, "heartbeat interval (0 disables)")
	fs.IntVar(&c.retries, "retries", 8, "consecutive reconnect attempts before giving up")
	fs.StringVar(&c.httpAddr, "http", "", "serve /metrics /healthz /varz /debug/pprof on this address (empty disables)")
	fs.BoolVar(&c.compress, "compress", false, "negotiate flate frame compression (falls back to raw against peers that lack it)")
	c.applyProfiles = contentionProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if c.connect == "" {
		return nil, usagef("primary: -connect must not be empty")
	}
	if !knownWorkload(c.workload) {
		return nil, usagef("primary: unknown workload %q (tpcc, chbench, seats, bustracker)", c.workload)
	}
	if c.txns <= 0 || c.epochSize <= 0 {
		return nil, usagef("primary: -txns and -epoch must be positive (got %d, %d)", c.txns, c.epochSize)
	}
	if c.window <= 0 {
		return nil, usagef("primary: -window must be positive (got %d)", c.window)
	}
	if c.retries <= 0 {
		return nil, usagef("primary: -retries must be positive (got %d)", c.retries)
	}
	if c.rate < 0 || c.hb < 0 {
		return nil, usagef("primary: -rate and -hb must not be negative")
	}
	return c, nil
}

type backupFlags struct {
	listen, algo, workload string
	workers, pipeline      int
	once                   bool
	ckpt, resume           string
	gcEvery                time.Duration
	columnar               bool
	compactEvery           time.Duration
	httpAddr               string
	spoolDir, ckptDir      string
	ckptEvery              int
	ckptInterval           time.Duration
	syncPolicy             string
	compress               bool
	applyProfiles          func()
}

// supervised reports whether the recovery supervisor runs the node.
func (c *backupFlags) supervised() bool { return c.spoolDir != "" }

func parseBackupFlags(args []string) (*backupFlags, error) {
	fs := flag.NewFlagSet("backup", flag.ContinueOnError)
	c := &backupFlags{}
	fs.StringVar(&c.listen, "listen", ":7070", "listen address")
	fs.StringVar(&c.algo, "algo", "aets", "replay algorithm: aets, tplr, atr, c5")
	fs.IntVar(&c.workers, "workers", 8, "replay workers")
	fs.IntVar(&c.pipeline, "pipeline", 2, "replay pipeline depth: epochs in flight (0 = serial; aets/tplr only)")
	fs.StringVar(&c.workload, "workload", "tpcc", "workload schema (for grouping): tpcc, chbench, seats, bustracker")
	fs.BoolVar(&c.once, "once", true, "exit after the first clean end-of-stream")
	fs.StringVar(&c.ckpt, "checkpoint", "", "write a checkpoint file after the stream drains")
	fs.StringVar(&c.resume, "resume", "", "restore from this checkpoint and resume the stream at its epoch cursor")
	fs.DurationVar(&c.gcEvery, "gc-every", 0, "vacuum version chains at this interval (0 disables)")
	fs.BoolVar(&c.columnar, "columnar", false, "freeze cold data into columnar segments and plan reads as segment + delta merges")
	fs.DurationVar(&c.compactEvery, "compact-every", 0, "columnar compaction cadence (0 = reuse -gc-every; requires -columnar when set)")
	fs.StringVar(&c.httpAddr, "http", "", "serve /metrics /healthz /varz /debug/pprof on this address (empty disables)")
	fs.StringVar(&c.spoolDir, "spool-dir", "", "durable epoch spool directory; with -ckpt-dir, runs the crash-recovery supervisor")
	fs.StringVar(&c.ckptDir, "ckpt-dir", "", "atomic checkpoint directory for the recovery supervisor")
	fs.IntVar(&c.ckptEvery, "ckpt-every", 0, "supervisor: checkpoint after this many applied epochs (0 disables)")
	fs.DurationVar(&c.ckptInterval, "ckpt-interval", 30*time.Second, "supervisor: checkpoint at least this often while epochs arrive (0 disables)")
	fs.StringVar(&c.syncPolicy, "sync", "always", "spool sync policy: always, interval, never")
	fs.BoolVar(&c.compress, "compress", false, "advertise flate frame compression to senders (raw frames still accepted)")
	c.applyProfiles = contentionProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if c.listen == "" {
		return nil, usagef("backup: -listen must not be empty")
	}
	if !knownAlgo(c.algo) {
		return nil, usagef("backup: unknown algo %q (aets, tplr, atr, c5)", c.algo)
	}
	if !knownWorkload(c.workload) {
		return nil, usagef("backup: unknown workload %q (tpcc, chbench, seats, bustracker)", c.workload)
	}
	if c.workers <= 0 {
		return nil, usagef("backup: -workers must be positive (got %d)", c.workers)
	}
	if c.pipeline < 0 {
		return nil, usagef("backup: -pipeline must not be negative (got %d)", c.pipeline)
	}
	if c.ckptEvery < 0 || c.ckptInterval < 0 || c.gcEvery < 0 {
		return nil, usagef("backup: -ckpt-every, -ckpt-interval and -gc-every must not be negative")
	}
	if c.compactEvery < 0 {
		return nil, usagef("backup: -compact-every must not be negative")
	}
	if c.compactEvery > 0 && !c.columnar {
		return nil, usagef("backup: -compact-every requires -columnar")
	}
	if (c.spoolDir == "") != (c.ckptDir == "") {
		return nil, usagef("backup: recovery mode needs both -spool-dir and -ckpt-dir (got spool-dir=%q, ckpt-dir=%q)", c.spoolDir, c.ckptDir)
	}
	if c.supervised() && c.resume != "" {
		return nil, usagef("backup: -resume conflicts with -spool-dir/-ckpt-dir — the supervisor restores from its checkpoint directory automatically")
	}
	if c.supervised() && c.ckpt != "" {
		return nil, usagef("backup: -checkpoint conflicts with -spool-dir/-ckpt-dir — the supervisor checkpoints into -ckpt-dir on its own schedule")
	}
	if _, err := recovery.ParseSyncPolicy(c.syncPolicy); err != nil {
		return nil, usagef("backup: %v", err)
	}
	return c, nil
}

type clusterFlags struct {
	connects              []string
	workload              string
	txns, epochSize       int
	seed                  int64
	rate, window, retries int
	hb                    time.Duration
	maxQueue              int
	snapshot              bool
	digestEvery           int
	columnar              bool
	compactEvery          time.Duration
	httpAddr              string
	compress              bool
	applyProfiles         func()
}

func parseClusterFlags(args []string) (*clusterFlags, error) {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	c := &clusterFlags{}
	connect := fs.String("connect", "", "comma-separated replica addresses (required)")
	fs.StringVar(&c.workload, "workload", "tpcc", "workload: tpcc, chbench, seats, bustracker")
	fs.IntVar(&c.txns, "txns", 50000, "transactions to ship")
	fs.IntVar(&c.epochSize, "epoch", 2048, "epoch size")
	fs.Int64Var(&c.seed, "seed", 1, "seed")
	fs.IntVar(&c.rate, "rate", 0, "epochs per second pacing (0 = as fast as possible)")
	fs.IntVar(&c.window, "window", 32, "per-link max in-flight (unacked) epochs")
	fs.DurationVar(&c.hb, "hb", 500*time.Millisecond, "per-link heartbeat interval (0 disables)")
	fs.IntVar(&c.retries, "retries", 8, "per-link consecutive reconnect attempts before the peer is dropped")
	fs.IntVar(&c.maxQueue, "max-queue", 0, "per-peer divergence buffer in epochs; a peer further behind is dropped — or snapshot re-based with -snapshot (0 = unbounded)")
	fs.BoolVar(&c.snapshot, "snapshot", false, "serve wire-level snapshot catch-up: mirror the stream into a local node and re-base replicas too stale to resume (overflowed -max-queue, compacted spool) instead of dropping them")
	fs.IntVar(&c.digestEvery, "digest-every", 0, "ship an anti-entropy state digest every N epochs; replicas whose committed state diverges are repaired via snapshot (requires -snapshot; 0 disables)")
	fs.BoolVar(&c.columnar, "columnar", false, "run the snapshot mirror node columnar: freeze cold data into segments (requires -snapshot)")
	fs.DurationVar(&c.compactEvery, "compact-every", 0, "mirror-node columnar compaction cadence (0 disables; requires -columnar)")
	fs.StringVar(&c.httpAddr, "http", "", "serve /metrics /healthz /varz /debug/pprof on this address (empty disables)")
	fs.BoolVar(&c.compress, "compress", false, "negotiate flate frame compression per peer (a v1 peer still gets raw frames)")
	c.applyProfiles = contentionProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *connect == "" {
		return nil, usagef("cluster: -connect is required (comma-separated replica addresses)")
	}
	seen := map[string]bool{}
	for _, a := range strings.Split(*connect, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, usagef("cluster: empty address in -connect %q", *connect)
		}
		if seen[a] {
			return nil, usagef("cluster: duplicate address %q in -connect", a)
		}
		seen[a] = true
		c.connects = append(c.connects, a)
	}
	if !knownWorkload(c.workload) {
		return nil, usagef("cluster: unknown workload %q (tpcc, chbench, seats, bustracker)", c.workload)
	}
	if c.txns <= 0 || c.epochSize <= 0 {
		return nil, usagef("cluster: -txns and -epoch must be positive (got %d, %d)", c.txns, c.epochSize)
	}
	if c.window <= 0 || c.retries <= 0 {
		return nil, usagef("cluster: -window and -retries must be positive")
	}
	if c.rate < 0 || c.hb < 0 || c.maxQueue < 0 {
		return nil, usagef("cluster: -rate, -hb and -max-queue must not be negative")
	}
	if c.digestEvery < 0 {
		return nil, usagef("cluster: -digest-every must not be negative (got %d)", c.digestEvery)
	}
	if c.digestEvery > 0 && !c.snapshot {
		return nil, usagef("cluster: -digest-every requires -snapshot (a detected mismatch is repaired by snapshot)")
	}
	if c.columnar && !c.snapshot {
		return nil, usagef("cluster: -columnar requires -snapshot (it configures the snapshot mirror node)")
	}
	if c.compactEvery < 0 {
		return nil, usagef("cluster: -compact-every must not be negative")
	}
	if c.compactEvery > 0 && !c.columnar {
		return nil, usagef("cluster: -compact-every requires -columnar")
	}
	return c, nil
}

type routeFlags struct {
	replicas        int
	algo, workload  string
	txns, epochSize int
	seed            int64
	workers, rate   int
	queries         int
	concurrency     int
	delay           time.Duration
	stale           int64
	ordered         bool
	compress        bool
	applyProfiles   func()
}

func parseRouteFlags(args []string) (*routeFlags, error) {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	c := &routeFlags{}
	fs.IntVar(&c.replicas, "replicas", 3, "replica count (1-64)")
	fs.StringVar(&c.algo, "algo", "aets", "replay algorithm: aets, tplr, atr, c5")
	fs.StringVar(&c.workload, "workload", "tpcc", "workload: tpcc, chbench, seats, bustracker")
	fs.IntVar(&c.txns, "txns", 20000, "transactions to ship")
	fs.IntVar(&c.epochSize, "epoch", 256, "epoch size")
	fs.Int64Var(&c.seed, "seed", 1, "seed")
	fs.IntVar(&c.workers, "workers", 2, "replay workers per replica")
	fs.IntVar(&c.rate, "rate", 200, "epochs per second pacing (0 = as fast as possible)")
	fs.IntVar(&c.queries, "queries", 2000, "routed queries to issue while the stream ships")
	fs.IntVar(&c.concurrency, "concurrency", 8, "concurrent query workers")
	fs.DurationVar(&c.delay, "delay", 0, "per-link replication delay: link i gets i×delay (ship.FaultConn latency)")
	fs.Int64Var(&c.stale, "stale", 1_000_000, "query timestamps trail the shipped watermark by up to this many commit-ts units (0 = always query the head)")
	fs.BoolVar(&c.ordered, "ordered", false, "routed reads demand global key order (merged Scan); default reads are order-insensitive aggregates (ScanAny)")
	fs.BoolVar(&c.compress, "compress", false, "negotiate flate frame compression on every replication link")
	c.applyProfiles = contentionProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if c.replicas < 1 || c.replicas > 64 {
		return nil, usagef("route: -replicas must be in 1..64 (got %d)", c.replicas)
	}
	if !knownAlgo(c.algo) {
		return nil, usagef("route: unknown algo %q (aets, tplr, atr, c5)", c.algo)
	}
	if !knownWorkload(c.workload) {
		return nil, usagef("route: unknown workload %q (tpcc, chbench, seats, bustracker)", c.workload)
	}
	if c.txns <= 0 || c.epochSize <= 0 {
		return nil, usagef("route: -txns and -epoch must be positive (got %d, %d)", c.txns, c.epochSize)
	}
	if c.workers <= 0 {
		return nil, usagef("route: -workers must be positive (got %d)", c.workers)
	}
	if c.queries < 0 || c.rate < 0 || c.delay < 0 || c.stale < 0 {
		return nil, usagef("route: -queries, -rate, -delay and -stale must not be negative")
	}
	if c.concurrency <= 0 {
		return nil, usagef("route: -concurrency must be positive (got %d)", c.concurrency)
	}
	return c, nil
}
