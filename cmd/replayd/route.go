package main

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aets/internal/cluster"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/primary"
	"aets/internal/query"
	"aets/internal/ship"
	"aets/internal/workload"
)

// runRoute runs a whole 1-primary/N-replica topology in one process:
// N replica nodes behind real TCP receivers, a fan-out primary whose
// link to replica i carries i×-delay of injected latency (so the fleet
// settles into the usual one-fresh-many-stale shape), and a
// freshness-aware router serving -queries routed reads while the stream
// ships. It reports the zero-block hit rate, admission latency
// percentiles and how the reads spread across the fleet — the
// measurement harness behind EXPERIMENTS.md.
func runRoute(args []string) error {
	c, err := parseRouteFlags(args)
	if err != nil {
		return err
	}
	c.applyProfiles()

	gen, plan, err := workloadPlan(c.workload)
	if err != nil {
		return err
	}
	tables := workload.TableIDs(gen.Tables())
	schema := ship.SchemaHash(c.workload, tables)

	// Replica tier: N nodes behind loopback receivers.
	cm := cluster.NewMetrics(metrics.Default)
	members := cluster.NewMembership(cm)
	type replica struct {
		id   string
		node *htap.Node
		done chan struct{}
	}
	replicas := make([]*replica, c.replicas)
	peers := make([]cluster.Peer, c.replicas)
	for i := range replicas {
		id := fmt.Sprintf("replica-%d", i)
		node, err := htap.NewNode(htap.Kind(c.algo), plan, htap.Options{Workers: c.workers})
		if err != nil {
			return err
		}
		rcv, err := node.ShipReceiver(ship.ReceiverConfig{
			Schema:   schema,
			Metrics:  ship.NewPeerMetrics(metrics.Default, id),
			Drain:    func() error { node.Drain(); return node.Err() },
			Compress: c.compress,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		r := &replica{id: id, node: node, done: make(chan struct{})}
		replicas[i] = r
		go func() {
			defer close(r.done)
			defer ln.Close()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				finished, err := rcv.Serve(conn)
				if err != nil {
					fmt.Printf("  %s stream: %v\n", r.id, err)
				}
				if finished {
					return
				}
			}
		}()
		if err := members.Add(cluster.NewNodeReplica(id, node)); err != nil {
			return err
		}

		// Link i carries i×delay of injected latency on every read and
		// write — replica 0 is the fresh one, the tail trails.
		addr := ln.Addr().String()
		dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
		if c.delay > 0 && i > 0 {
			linkDelay := time.Duration(i) * c.delay
			dial = ship.FaultDialer(dial, func(int) ship.FaultOpts {
				return ship.FaultOpts{Latency: linkDelay}
			})
		}
		peers[i] = cluster.Peer{ID: id, Sender: ship.SenderConfig{
			Dial:           dial,
			Schema:         schema,
			Window:         32,
			HeartbeatEvery: 5 * time.Millisecond,
			Compress:       c.compress,
		}}
	}

	router, err := cluster.NewRouter(cluster.RouterConfig{Members: members, Metrics: cm})
	if err != nil {
		return err
	}
	fan, err := cluster.NewFanout(cluster.FanoutConfig{Peers: peers, Registry: metrics.Default})
	if err != nil {
		return err
	}

	// Primary tier: ship in the background, tracking the completed
	// watermark queries draw their timestamps from.
	p := primary.New(gen, c.seed)
	encs := p.GenerateEncoded(c.txns, c.epochSize)
	var shippedTS atomic.Int64
	shipDone := make(chan error, 1)
	go func() {
		for i := range encs {
			if err := fan.Send(&encs[i]); err != nil {
				shipDone <- err
				return
			}
			shippedTS.Store(encs[i].LastCommitTS)
			// Surface any link that died (dial budget, schema mismatch)
			// through membership, so Status shows "replica up, feed
			// dead" instead of silent staleness.
			fan.SyncLinkErrs(members)
			if c.rate > 0 {
				time.Sleep(time.Second / time.Duration(c.rate))
			}
		}
		shipDone <- nil
	}()

	// Query tier: -concurrency workers paced so the run spans the
	// stream. Concurrency is what makes the load signal real — the
	// router spreads satisfied queries across the fleet by in-flight
	// admissions.
	var pace time.Duration
	if c.rate > 0 && c.queries > 0 {
		streamTime := time.Duration(len(encs)) * time.Second / time.Duration(c.rate)
		pace = streamTime * time.Duration(c.concurrency) / time.Duration(c.queries)
	}
	var mu sync.Mutex
	lats := make([]time.Duration, 0, c.queries)
	served := make(map[string]int, c.replicas)
	start := time.Now()
	for shippedTS.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	var queryErr atomic.Value
	for w := 0; w < c.concurrency; w++ {
		share := c.queries / c.concurrency
		if w < c.queries%c.concurrency {
			share++
		}
		wg.Add(1)
		go func(seed int64, share int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < share; q++ {
				head := shippedTS.Load()
				qts := head
				if c.stale > 0 {
					qts -= rng.Int63n(c.stale + 1)
				}
				if qts < 1 {
					qts = 1
				}
				t0 := time.Now()
				adm, err := router.Admit(qts, tables...)
				if err != nil {
					queryErr.Store(fmt.Errorf("admit qts=%d: %w", qts, err))
					return
				}
				lat := time.Since(t0)
				// A real (cheap) read on the admitted snapshot, so the
				// routed replica does serve the query it was picked for.
				// The variant follows what the caller claims to need:
				// -ordered drives the merged ordered Scan (the OLAP path
				// that pays for global key order), the default drives the
				// order-insensitive Count over the unordered shard walk.
				sn := adm.Replica.(cluster.Snapshotter).Query(adm.TS, tables...)
				if c.ordered {
					rows := 0
					err = sn.Scan(tables[0], 0, ^uint64(0), func(query.Row) bool {
						rows++
						return true
					})
				} else {
					_, err = sn.Count(tables[0])
				}
				if err != nil {
					adm.Done()
					queryErr.Store(err)
					return
				}
				mu.Lock()
				lats = append(lats, lat)
				served[adm.Replica.ID()]++
				mu.Unlock()
				adm.Done()
				if pace > 0 {
					time.Sleep(pace)
				}
			}
		}(c.seed+int64(w), share)
	}
	wg.Wait()
	queryTime := time.Since(start)
	if err, _ := queryErr.Load().(error); err != nil {
		return err
	}

	if err := <-shipDone; err != nil {
		return err
	}
	if err := fan.Close(); err != nil {
		return err
	}
	for _, r := range replicas {
		<-r.done
		r.node.Drain()
		if err := r.node.Err(); err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
	}

	hits, waits := cm.RouteHits.Load(), cm.RouteWaits.Load()
	hitRate := 0.0
	if hits+waits > 0 {
		hitRate = float64(hits) / float64(hits+waits)
	}
	fan.SyncLinkErrs(members)
	for _, st := range members.Snapshot() {
		link := ""
		if st.LinkErr != "" {
			link = "  link: " + st.LinkErr
		}
		fmt.Printf("  %-12s visible ts %8d  lag %6d  served %6d queries%s\n",
			st.ID, st.VisibleTS, st.ReplayLag, served[st.ID], link)
	}
	fmt.Printf("route summary: replicas=%d delay=%v stale=%d queries=%d hit_rate=%.3f waits=%d failovers=%d p50=%v p99=%v elapsed=%v\n",
		c.replicas, c.delay, c.stale, len(lats), hitRate, waits,
		cm.RouteFailovers.Load(), percentile(lats, 50), percentile(lats, 99),
		queryTime.Round(time.Millisecond))
	return nil
}

// percentile returns the p-th percentile of ds (nearest-rank).
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
