// Command replayd demonstrates primary→backup log shipping over TCP: the
// primary mode executes a benchmark workload, batches it into epochs and
// streams them; the backup mode receives the stream, replays it with a
// chosen algorithm, and periodically reports replay progress and
// visibility.
//
//	replayd backup -listen :7070 -algo aets -workers 8
//	replayd primary -connect localhost:7070 -workload tpcc -txns 50000
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"aets/internal/checkpoint"
	"aets/internal/epoch"
	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/memtable"
	"aets/internal/primary"
	"aets/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: replayd primary|backup [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "primary":
		err = runPrimary(os.Args[2:])
	case "backup":
		err = runBackup(os.Args[2:])
	default:
		err = fmt.Errorf("unknown mode %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Wire format per epoch: seq u64 | txnCount u32 | lastTxnID u64 |
// lastCommitTS i64 | entryCount u32 | bufLen u32 | buf. All little endian.

func writeEpoch(w io.Writer, enc *epoch.Encoded) error {
	var hdr [36]byte
	binary.LittleEndian.PutUint64(hdr[0:], enc.Seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(enc.TxnCount))
	binary.LittleEndian.PutUint64(hdr[12:], enc.LastTxnID)
	binary.LittleEndian.PutUint64(hdr[20:], uint64(enc.LastCommitTS))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(enc.EntryCount))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(len(enc.Buf)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(enc.Buf)
	return err
}

func readEpoch(r io.Reader) (*epoch.Encoded, error) {
	var hdr [36]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	enc := &epoch.Encoded{
		Seq:          binary.LittleEndian.Uint64(hdr[0:]),
		TxnCount:     int(binary.LittleEndian.Uint32(hdr[8:])),
		LastTxnID:    binary.LittleEndian.Uint64(hdr[12:]),
		LastCommitTS: int64(binary.LittleEndian.Uint64(hdr[20:])),
		EntryCount:   int(binary.LittleEndian.Uint32(hdr[28:])),
	}
	n := binary.LittleEndian.Uint32(hdr[32:])
	if n > 0 {
		enc.Buf = make([]byte, n)
		if _, err := io.ReadFull(r, enc.Buf); err != nil {
			return nil, err
		}
	}
	return enc, nil
}

func runPrimary(args []string) error {
	fs := flag.NewFlagSet("primary", flag.ExitOnError)
	connect := fs.String("connect", "localhost:7070", "backup address")
	name := fs.String("workload", "tpcc", "workload: tpcc, chbench, seats, bustracker")
	txns := fs.Int("txns", 50000, "transactions to ship")
	epochSize := fs.Int("epoch", 2048, "epoch size")
	seed := fs.Int64("seed", 1, "seed")
	rate := fs.Int("rate", 0, "epochs per second pacing (0 = as fast as possible)")
	_ = fs.Parse(args)

	var gen workload.Generator
	switch *name {
	case "tpcc":
		gen = workload.NewTPCC(20)
	case "chbench":
		gen = workload.NewCHBench(20)
	case "seats":
		gen = workload.NewSEATS()
	case "bustracker":
		gen = workload.NewBusTracker()
	default:
		return fmt.Errorf("unknown workload %q", *name)
	}

	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := bufio.NewWriterSize(conn, 1<<20)

	p := primary.New(gen, *seed)
	encs := p.GenerateEncoded(*txns, *epochSize)
	start := time.Now()
	for i := range encs {
		if err := writeEpoch(w, &encs[i]); err != nil {
			return err
		}
		if *rate > 0 {
			time.Sleep(time.Second / time.Duration(*rate))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("shipped %d epochs (%d txns) in %v\n", len(encs), *txns, time.Since(start).Round(time.Millisecond))
	return nil
}

func runBackup(args []string) error {
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "listen address")
	algo := fs.String("algo", "aets", "replay algorithm: aets, tplr, atr, c5")
	workers := fs.Int("workers", 8, "replay workers")
	name := fs.String("workload", "tpcc", "workload schema (for grouping): tpcc, chbench, seats, bustracker")
	once := fs.Bool("once", true, "exit after the first primary disconnects")
	ckpt := fs.String("checkpoint", "", "write a checkpoint file after the stream drains")
	gcEvery := fs.Duration("gc-every", 0, "vacuum version chains at this interval (0 disables)")
	_ = fs.Parse(args)

	var gen workload.Generator
	var plan *grouping.Plan
	switch *name {
	case "tpcc":
		gen = workload.NewTPCC(20)
		plan = grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
			grouping.Options{Eps: 0.05, MinPts: 2})
	case "chbench":
		gen = workload.NewCHBench(20)
		plan = grouping.Build(htap.CHRates(gen), workload.TableIDs(gen.Tables()),
			grouping.Options{PerTable: true})
	case "seats":
		gen = workload.NewSEATS()
		plan = grouping.SingleGroup(workload.TableIDs(gen.Tables()))
	case "bustracker":
		bt := workload.NewBusTracker()
		gen = bt
		plan = grouping.Build(bt.Rates(0), workload.TableIDs(bt.Tables()),
			grouping.Options{Eps: 0.3, MinPts: 2})
	default:
		return fmt.Errorf("unknown workload %q", *name)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("backup (%s, %d workers) listening on %s\n", *algo, *workers, *listen)

	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if err := serveStream(conn, htap.Kind(*algo), plan, *workers, *ckpt, *gcEvery); err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
		}
		if *once {
			return nil
		}
	}
}

func serveStream(conn net.Conn, kind htap.Kind, plan *grouping.Plan, workers int, ckptPath string, gcEvery time.Duration) error {
	defer conn.Close()
	mt := memtable.New()
	r, err := htap.NewReplayer(kind, mt, plan, htap.Options{Workers: workers})
	if err != nil {
		return err
	}
	r.Start()
	defer r.Stop()

	// Optional background vacuum: prune versions older than a trailing
	// retention window behind the visible timestamp. Readers are served at
	// or after the visible timestamp, so the watermark is safe.
	stopGC := make(chan struct{})
	defer close(stopGC)
	if gcEvery > 0 {
		go func() {
			t := time.NewTicker(gcEvery)
			defer t.Stop()
			for {
				select {
				case <-stopGC:
					return
				case <-t.C:
					if ts := r.GlobalTS(); ts > 0 {
						removed := mt.Vacuum(ts)
						if removed > 0 {
							fmt.Printf("  gc: pruned %d versions below ts %d\n", removed, ts)
						}
					}
				}
			}
		}()
	}

	br := bufio.NewReaderSize(conn, 1<<20)
	start := time.Now()
	var txns, entries int
	var lastSeq uint64
	lastReport := start
	for {
		enc, err := readEpoch(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		txns += enc.TxnCount
		entries += enc.EntryCount
		lastSeq = enc.Seq
		r.Feed(enc)
		if time.Since(lastReport) > time.Second {
			fmt.Printf("  %8d txns received, visible ts %d\n", txns, r.GlobalTS())
			lastReport = time.Now()
		}
	}
	r.Drain()
	if err := r.Err(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d txns (%d entries) in %v — %.0f txns/s, final visible ts %d\n",
		txns, entries, elapsed.Round(time.Millisecond),
		float64(txns)/elapsed.Seconds(), r.GlobalTS())

	if ckptPath != "" {
		f, err := os.Create(ckptPath)
		if err != nil {
			return err
		}
		defer f.Close()
		meta := checkpoint.Meta{LastEpochSeq: lastSeq, LastCommitTS: r.GlobalTS()}
		if err := checkpoint.Write(f, mt, meta); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s (epoch %d, ts %d)\n", ckptPath, meta.LastEpochSeq, meta.LastCommitTS)
	}
	return nil
}
