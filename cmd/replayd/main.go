// Command replayd demonstrates primary→backup log shipping over TCP
// using the internal/ship replication transport: the primary mode
// executes a benchmark workload, batches it into epochs and streams
// them with a bounded in-flight window, heartbeats and automatic
// reconnect; the backup mode receives the stream, replays it with a
// chosen algorithm, and periodically reports replay progress,
// visibility and shipping metrics. A backup restarted with -resume
// picks the stream up at its checkpoint's epoch cursor instead of
// re-replaying from scratch. With -spool-dir and -ckpt-dir the backup
// runs supervised (internal/recovery): epochs are spooled durably
// before replay, checkpoints are written atomically on a schedule, a
// hard-killed process restores from the newest valid checkpoint plus
// the spool tail, and a poison epoch is quarantined instead of
// crash-looping the replica.
//
//	replayd backup -listen :7070 -algo aets -workers 8 -checkpoint backup.ckpt
//	replayd primary -connect localhost:7070 -workload tpcc -txns 50000 -window 32
//	... crash ...
//	replayd backup -listen :7070 -algo aets -resume backup.ckpt
//
//	replayd backup -listen :7070 -algo aets \
//	    -spool-dir spool/ -ckpt-dir ckpt/ -ckpt-every 64 -sync always
//
// The cluster mode fans one epoch stream out to several backups at
// once (internal/cluster), each over its own independent link; the
// route mode runs a whole 1-primary/N-replica topology in one process
// with skewed per-link delays and measures freshness-aware query
// routing against it:
//
//	replayd backup -listen :7070 & replayd backup -listen :7071 &
//	replayd cluster -connect localhost:7070,localhost:7071 -txns 50000
//	replayd route -replicas 3 -delay 5ms -queries 2000
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/obsrv"
	"aets/internal/primary"
	"aets/internal/recovery"
	"aets/internal/ship"
	"aets/internal/workload"
)

// contentionProfileFlags registers -mutexprofile and -blockprofile on fs
// and returns a function to apply them after parsing. The profiles are
// scraped through the -http server's /debug/pprof/{mutex,block} endpoints;
// both samplers are off by default because they add a timestamp read to
// every contended lock hand-off.
func contentionProfileFlags(fs *flag.FlagSet) (apply func()) {
	mutexFrac := fs.Int("mutexprofile", 0,
		"sample 1/n of contended mutex events for /debug/pprof/mutex (0 disables)")
	blockRate := fs.Int("blockprofile", 0,
		"sample blocking events ≥ n ns for /debug/pprof/block (0 disables)")
	return func() {
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
	}
}

// serveHTTP boots the observability endpoints when -http is set. It
// returns a no-op closer when addr is empty.
func serveHTTP(addr string, opts obsrv.Options) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := obsrv.Serve(addr, opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("observability on http://%s (/metrics /healthz /varz /debug/pprof/)\n", srv.Addr())
	return func() { srv.Close() }, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: replayd primary|backup|cluster|route [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "primary":
		err = runPrimary(os.Args[2:])
	case "backup":
		err = runBackup(os.Args[2:])
	case "cluster":
		err = runCluster(os.Args[2:])
	case "route":
		err = runRoute(os.Args[2:])
	default:
		err = &usageError{msg: fmt.Sprintf("unknown mode %q (primary, backup, cluster, route)", os.Args[1])}
	}
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// workloadPlan builds the generator and grouping plan for a workload
// name; both modes must agree on it (enforced by the schema hash in the
// ship handshake).
func workloadPlan(name string) (workload.Generator, *grouping.Plan, error) {
	switch name {
	case "tpcc":
		gen := workload.NewTPCC(20)
		return gen, grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
			grouping.Options{Eps: 0.05, MinPts: 2}), nil
	case "chbench":
		gen := workload.NewCHBench(20)
		return gen, grouping.Build(htap.CHRates(gen), workload.TableIDs(gen.Tables()),
			grouping.Options{PerTable: true}), nil
	case "seats":
		gen := workload.NewSEATS()
		return gen, grouping.SingleGroup(workload.TableIDs(gen.Tables())), nil
	case "bustracker":
		bt := workload.NewBusTracker()
		return bt, grouping.Build(bt.Rates(0), workload.TableIDs(bt.Tables()),
			grouping.Options{Eps: 0.3, MinPts: 2}), nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", name)
	}
}

func runPrimary(args []string) error {
	c, err := parsePrimaryFlags(args)
	if err != nil {
		return err
	}
	c.applyProfiles()

	gen, _, err := workloadPlan(c.workload)
	if err != nil {
		return err
	}

	p := primary.New(gen, c.seed)
	m := ship.NewMetrics(metrics.Default)
	// No HeartbeatTS: the stream is pre-generated, so the primary's live
	// commit clock runs ahead of what has been shipped; heartbeats fall
	// back to the last enqueued epoch's timestamp, which is the honest
	// "stream complete through here" value.
	s, err := ship.NewSender(ship.SenderConfig{
		Dial:           func() (net.Conn, error) { return net.Dial("tcp", c.connect) },
		Schema:         ship.SchemaHash(c.workload, workload.TableIDs(gen.Tables())),
		Window:         c.window,
		HeartbeatEvery: c.hb,
		MaxAttempts:    c.retries,
		Metrics:        m,
		Compress:       c.compress,
	})
	if err != nil {
		return err
	}
	if err := s.Connect(); err != nil {
		return err
	}

	closeHTTP, err := serveHTTP(c.httpAddr, obsrv.Options{
		Health: func() obsrv.Health {
			st := s.Stats()
			h := obsrv.Health{Healthy: true, Status: "ok", ShipConnected: st.Connected}
			if !st.Connected {
				h.Healthy = false
				h.Status = "backup disconnected"
			}
			return h
		},
	})
	if err != nil {
		return err
	}
	defer closeHTTP()

	stopProgress := startProgress(func() {
		st := s.Stats()
		fmt.Printf("  sent %d  acked %d  inflight %d  lag %.2fs  reconnects %d\n",
			st.Sent, st.Acked, st.Inflight, st.Lag.Seconds(), st.Reconnects)
	})
	defer stopProgress()

	encs := p.GenerateEncoded(c.txns, c.epochSize)
	start := time.Now()
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			return err
		}
		if c.rate > 0 {
			time.Sleep(time.Second / time.Duration(c.rate))
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("shipped %d epochs (%d txns) in %v — acked %d, reconnects %d\n",
		len(encs), c.txns, time.Since(start).Round(time.Millisecond), st.Acked, st.Reconnects)
	if st.BytesRaw > 0 && st.BytesWire != st.BytesRaw {
		fmt.Printf("  wire %d / raw %d bytes — ratio %.3f\n",
			st.BytesWire, st.BytesRaw, float64(st.BytesWire)/float64(st.BytesRaw))
	}
	return nil
}

func runBackup(args []string) error {
	c, err := parseBackupFlags(args)
	if err != nil {
		return err
	}
	c.applyProfiles()

	gen, plan, err := workloadPlan(c.workload)
	if err != nil {
		return err
	}

	opts := htap.Options{Workers: c.workers, Pipeline: c.pipeline, Columnar: c.columnar}

	// Columnar compaction rides the GC cadence unless given its own.
	compactEvery := c.compactEvery
	if c.columnar && compactEvery == 0 {
		compactEvery = c.gcEvery
	}

	if c.supervised() {
		return runSupervised(supervisedConfig{
			listen: c.listen, algo: c.algo, name: c.workload,
			gen: gen, plan: plan, opts: opts,
			spoolDir: c.spoolDir, ckptDir: c.ckptDir,
			ckptEvery: c.ckptEvery, ckptInterval: c.ckptInterval,
			syncPolicy: c.syncPolicy, once: c.once, gcEvery: c.gcEvery,
			compactEvery: compactEvery,
			httpAddr:     c.httpAddr, compress: c.compress,
		})
	}
	var node *htap.Node
	if c.resume != "" {
		f, err := os.Open(c.resume)
		if err != nil {
			return err
		}
		n, m, err := htap.RestoreNode(f, htap.Kind(c.algo), plan, opts)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume from %s: %w", c.resume, err)
		}
		node = n
		fmt.Printf("resumed from %s: next epoch %d, visible ts %d\n",
			c.resume, m.NextEpochSeq(), m.LastCommitTS)
	} else {
		node, err = htap.NewNode(htap.Kind(c.algo), plan, opts)
		if err != nil {
			return err
		}
	}
	// The host makes the bare backup snapshot-capable: a sender that
	// cannot serve this cursor (spool compacted, backlog shed) streams a
	// full checkpoint instead, and the host swaps in the rebuilt node
	// without a restart. The old node keeps serving until the swap.
	host := htap.HostNode(node, htap.Kind(c.algo), plan, opts)
	defer host.Close()

	if c.gcEvery > 0 {
		stopGC := make(chan struct{})
		defer close(stopGC)
		go func() {
			t := time.NewTicker(c.gcEvery)
			defer t.Stop()
			for {
				select {
				case <-stopGC:
					return
				case <-t.C:
					// Re-resolve each tick: a snapshot restore swaps nodes.
					if n := host.Node(); n != nil {
						if ts := n.VisibleTS(); ts > 0 {
							n.Vacuum(ts)
						}
					}
				}
			}
		}()
	}
	if compactEvery > 0 {
		stopCompact := make(chan struct{})
		defer close(stopCompact)
		go func() {
			t := time.NewTicker(compactEvery)
			defer t.Stop()
			for {
				select {
				case <-stopCompact:
					return
				case <-t.C:
					// Re-resolve each tick: a snapshot restore swaps nodes,
					// and the replacement (built with the same Options) is
					// columnar too.
					if n := host.Node(); n != nil {
						if ts := n.VisibleTS(); ts > 0 {
							n.Compact(ts)
						}
					}
				}
			}
		}()
	}

	m := ship.NewMetrics(metrics.Default)
	rcv, err := host.ShipReceiver(ship.ReceiverConfig{
		Schema:  ship.SchemaHash(c.workload, workload.TableIDs(gen.Tables())),
		Metrics: m,
		Drain: func() error {
			n := host.Node()
			n.Drain()
			return n.Err()
		},
		Compress: c.compress,
	})
	if err != nil {
		return err
	}

	closeHTTP, err := serveHTTP(c.httpAddr, obsrv.Options{
		Health: func() obsrv.Health {
			return host.Node().HealthSource(metrics.Default, func() bool {
				return metrics.Default.Gauge("ship_connected").Load() != 0
			})()
		},
	})
	if err != nil {
		return err
	}
	defer closeHTTP()

	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("backup (%s, %d workers, pipeline %d) listening on %s, cursor %d\n",
		c.algo, c.workers, c.pipeline, c.listen, rcv.Cursor())

	stopProgress := startProgress(func() {
		st := rcv.Stats()
		fmt.Printf("  %8d txns received, cursor %d, visible ts %d | %s | %s\n",
			st.Txns, st.Cursor, host.Node().VisibleTS(), metrics.Default.Line("ship_"),
			metrics.Default.Line("replay_"))
	})
	defer stopProgress()

	start := time.Now()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		done, err := rcv.Serve(conn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
		}
		if done && c.once {
			break
		}
	}
	final := host.Node()
	final.Drain()
	if err := final.Err(); err != nil {
		return err
	}
	st := rcv.Stats()
	elapsed := time.Since(start)
	fmt.Printf("replayed %d txns (%d entries, %d duplicates dropped) in %v — %.0f txns/s, final visible ts %d\n",
		st.Txns, st.Entries, st.Duplicates, elapsed.Round(time.Millisecond),
		float64(st.Txns)/elapsed.Seconds(), final.VisibleTS())

	if c.ckpt != "" {
		f, err := os.Create(c.ckpt)
		if err != nil {
			return err
		}
		defer f.Close()
		meta, err := final.Checkpoint(f)
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s (epoch %d, ts %d)\n", c.ckpt, meta.LastEpochSeq, meta.LastCommitTS)
	}
	return nil
}

// supervisedConfig carries the backup flags into the recovery mode.
type supervisedConfig struct {
	listen, algo, name string
	gen                workload.Generator
	plan               *grouping.Plan
	opts               htap.Options
	spoolDir, ckptDir  string
	ckptEvery          int
	ckptInterval       time.Duration
	syncPolicy         string
	once               bool
	gcEvery            time.Duration
	compactEvery       time.Duration
	httpAddr           string
	compress           bool
}

// runSupervised is the crash-tolerant backup: every received epoch is
// spooled durably before it is acknowledged, checkpoints are cut
// atomically on a schedule, and the replay supervisor restores
// checkpoint + spool tail on startup and rebuilds the node on fatal
// replay errors instead of exiting.
func runSupervised(c supervisedConfig) error {
	policy, err := recovery.ParseSyncPolicy(c.syncPolicy)
	if err != nil {
		return err
	}
	spool, err := recovery.OpenSpool(recovery.SpoolConfig{Dir: c.spoolDir, Policy: policy})
	if err != nil {
		return err
	}
	defer spool.Close()
	mgr, err := recovery.OpenManager(c.ckptDir, 0, nil)
	if err != nil {
		return err
	}
	sup, err := recovery.NewSupervisor(recovery.Config{
		Kind:                  htap.Kind(c.algo),
		Plan:                  c.plan,
		Node:                  c.opts,
		Spool:                 spool,
		Checkpoints:           mgr,
		CheckpointEveryEpochs: c.ckptEvery,
		CheckpointInterval:    c.ckptInterval,
	})
	if err != nil {
		return err
	}
	if err := sup.Start(); err != nil {
		return err
	}
	defer sup.Close()

	if c.gcEvery > 0 {
		if node := sup.Node(); node != nil {
			stop := node.StartVacuumLoop(c.gcEvery, 0)
			defer stop()
		}
	}
	if c.compactEvery > 0 {
		if node := sup.Node(); node != nil {
			stop := node.StartCompactLoop(c.compactEvery, 0)
			defer stop()
		}
	}

	m := ship.NewMetrics(metrics.Default)
	rcv, err := ship.NewReceiver(ship.ReceiverConfig{
		Schema:  ship.SchemaHash(c.name, workload.TableIDs(c.gen.Tables())),
		Resume:  sup.NextSeq(),
		Applier: sup,
		Metrics: m,
		Drain:   sup.Checkpoint,
		// A digest mismatch survives link (and process) lifetimes: every
		// handshake re-requests snapshot repair until one lands.
		NeedSnapshot: sup.NeedSnapshot,
		Compress:     c.compress,
	})
	if err != nil {
		return err
	}

	closeHTTP, err := serveHTTP(c.httpAddr, obsrv.Options{
		Health: func() obsrv.Health {
			h := sup.Health()
			h.ShipConnected = metrics.Default.Gauge("ship_connected").Load() != 0
			return h
		},
	})
	if err != nil {
		return err
	}
	defer closeHTTP()

	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("supervised backup (%s) listening on %s, cursor %d, spool %s (sync=%s), checkpoints %s\n",
		c.algo, c.listen, rcv.Cursor(), c.spoolDir, policy, c.ckptDir)

	stopProgress := startProgress(func() {
		st := rcv.Stats()
		sst := sup.Stats()
		fmt.Printf("  %8d txns received, cursor %d, state %s, restarts %d, quarantined %d | %s\n",
			st.Txns, st.Cursor, sst.State, sst.Restarts, sst.Quarantined,
			metrics.Default.Line("recovery_"))
	})
	defer stopProgress()

	start := time.Now()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		done, err := rcv.Serve(conn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
		}
		if sup.State() == recovery.StateFatal {
			return fmt.Errorf("supervisor fatal: %s", sup.Stats().LastErr)
		}
		if done && c.once {
			break
		}
	}
	st := rcv.Stats()
	sst := sup.Stats()
	elapsed := time.Since(start)
	fmt.Printf("replayed %d txns (%d entries, %d duplicates dropped) in %v — state %s, restarts %d, quarantined %d\n",
		st.Txns, st.Entries, st.Duplicates, elapsed.Round(time.Millisecond),
		sst.State, sst.Restarts, sst.Quarantined)
	return nil
}

// startProgress runs fn once a second until the returned stop function
// is called.
func startProgress(fn func()) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fn()
			}
		}
	}()
	return func() { close(done) }
}
