// Command replayd demonstrates primary→backup log shipping over TCP
// using the internal/ship replication transport: the primary mode
// executes a benchmark workload, batches it into epochs and streams
// them with a bounded in-flight window, heartbeats and automatic
// reconnect; the backup mode receives the stream, replays it with a
// chosen algorithm, and periodically reports replay progress,
// visibility and shipping metrics. A backup restarted with -resume
// picks the stream up at its checkpoint's epoch cursor instead of
// re-replaying from scratch. With -spool-dir and -ckpt-dir the backup
// runs supervised (internal/recovery): epochs are spooled durably
// before replay, checkpoints are written atomically on a schedule, a
// hard-killed process restores from the newest valid checkpoint plus
// the spool tail, and a poison epoch is quarantined instead of
// crash-looping the replica.
//
//	replayd backup -listen :7070 -algo aets -workers 8 -checkpoint backup.ckpt
//	replayd primary -connect localhost:7070 -workload tpcc -txns 50000 -window 32
//	... crash ...
//	replayd backup -listen :7070 -algo aets -resume backup.ckpt
//
//	replayd backup -listen :7070 -algo aets \
//	    -spool-dir spool/ -ckpt-dir ckpt/ -ckpt-every 64 -sync always
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/obsrv"
	"aets/internal/primary"
	"aets/internal/recovery"
	"aets/internal/ship"
	"aets/internal/workload"
)

// contentionProfileFlags registers -mutexprofile and -blockprofile on fs
// and returns a function to apply them after parsing. The profiles are
// scraped through the -http server's /debug/pprof/{mutex,block} endpoints;
// both samplers are off by default because they add a timestamp read to
// every contended lock hand-off.
func contentionProfileFlags(fs *flag.FlagSet) (apply func()) {
	mutexFrac := fs.Int("mutexprofile", 0,
		"sample 1/n of contended mutex events for /debug/pprof/mutex (0 disables)")
	blockRate := fs.Int("blockprofile", 0,
		"sample blocking events ≥ n ns for /debug/pprof/block (0 disables)")
	return func() {
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		if *blockRate > 0 {
			runtime.SetBlockProfileRate(*blockRate)
		}
	}
}

// serveHTTP boots the observability endpoints when -http is set. It
// returns a no-op closer when addr is empty.
func serveHTTP(addr string, opts obsrv.Options) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := obsrv.Serve(addr, opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("observability on http://%s (/metrics /healthz /varz /debug/pprof/)\n", srv.Addr())
	return func() { srv.Close() }, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: replayd primary|backup [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "primary":
		err = runPrimary(os.Args[2:])
	case "backup":
		err = runBackup(os.Args[2:])
	default:
		err = fmt.Errorf("unknown mode %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// workloadPlan builds the generator and grouping plan for a workload
// name; both modes must agree on it (enforced by the schema hash in the
// ship handshake).
func workloadPlan(name string) (workload.Generator, *grouping.Plan, error) {
	switch name {
	case "tpcc":
		gen := workload.NewTPCC(20)
		return gen, grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
			grouping.Options{Eps: 0.05, MinPts: 2}), nil
	case "chbench":
		gen := workload.NewCHBench(20)
		return gen, grouping.Build(htap.CHRates(gen), workload.TableIDs(gen.Tables()),
			grouping.Options{PerTable: true}), nil
	case "seats":
		gen := workload.NewSEATS()
		return gen, grouping.SingleGroup(workload.TableIDs(gen.Tables())), nil
	case "bustracker":
		bt := workload.NewBusTracker()
		return bt, grouping.Build(bt.Rates(0), workload.TableIDs(bt.Tables()),
			grouping.Options{Eps: 0.3, MinPts: 2}), nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", name)
	}
}

func runPrimary(args []string) error {
	fs := flag.NewFlagSet("primary", flag.ExitOnError)
	connect := fs.String("connect", "localhost:7070", "backup address")
	name := fs.String("workload", "tpcc", "workload: tpcc, chbench, seats, bustracker")
	txns := fs.Int("txns", 50000, "transactions to ship")
	epochSize := fs.Int("epoch", 2048, "epoch size")
	seed := fs.Int64("seed", 1, "seed")
	rate := fs.Int("rate", 0, "epochs per second pacing (0 = as fast as possible)")
	window := fs.Int("window", 32, "max in-flight (unacked) epochs before Send blocks")
	hb := fs.Duration("hb", 500*time.Millisecond, "heartbeat interval (0 disables)")
	retries := fs.Int("retries", 8, "consecutive reconnect attempts before giving up")
	httpAddr := fs.String("http", "", "serve /metrics /healthz /varz /debug/pprof on this address (empty disables)")
	applyProfiles := contentionProfileFlags(fs)
	_ = fs.Parse(args)
	applyProfiles()

	gen, _, err := workloadPlan(*name)
	if err != nil {
		return err
	}

	p := primary.New(gen, *seed)
	m := ship.NewMetrics(metrics.Default)
	// No HeartbeatTS: the stream is pre-generated, so the primary's live
	// commit clock runs ahead of what has been shipped; heartbeats fall
	// back to the last enqueued epoch's timestamp, which is the honest
	// "stream complete through here" value.
	s, err := ship.NewSender(ship.SenderConfig{
		Dial:           func() (net.Conn, error) { return net.Dial("tcp", *connect) },
		Schema:         ship.SchemaHash(*name, workload.TableIDs(gen.Tables())),
		Window:         *window,
		HeartbeatEvery: *hb,
		MaxAttempts:    *retries,
		Metrics:        m,
	})
	if err != nil {
		return err
	}
	if err := s.Connect(); err != nil {
		return err
	}

	closeHTTP, err := serveHTTP(*httpAddr, obsrv.Options{
		Health: func() obsrv.Health {
			st := s.Stats()
			h := obsrv.Health{Healthy: true, Status: "ok", ShipConnected: st.Connected}
			if !st.Connected {
				h.Healthy = false
				h.Status = "backup disconnected"
			}
			return h
		},
	})
	if err != nil {
		return err
	}
	defer closeHTTP()

	stopProgress := startProgress(func() {
		st := s.Stats()
		fmt.Printf("  sent %d  acked %d  inflight %d  lag %.2fs  reconnects %d\n",
			st.Sent, st.Acked, st.Inflight, st.Lag.Seconds(), st.Reconnects)
	})
	defer stopProgress()

	encs := p.GenerateEncoded(*txns, *epochSize)
	start := time.Now()
	for i := range encs {
		if err := s.Send(&encs[i]); err != nil {
			return err
		}
		if *rate > 0 {
			time.Sleep(time.Second / time.Duration(*rate))
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	st := s.Stats()
	fmt.Printf("shipped %d epochs (%d txns) in %v — acked %d, reconnects %d\n",
		len(encs), *txns, time.Since(start).Round(time.Millisecond), st.Acked, st.Reconnects)
	return nil
}

func runBackup(args []string) error {
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "listen address")
	algo := fs.String("algo", "aets", "replay algorithm: aets, tplr, atr, c5")
	workers := fs.Int("workers", 8, "replay workers")
	pipeline := fs.Int("pipeline", 2, "replay pipeline depth: epochs in flight (0 = serial; aets/tplr only)")
	name := fs.String("workload", "tpcc", "workload schema (for grouping): tpcc, chbench, seats, bustracker")
	once := fs.Bool("once", true, "exit after the first clean end-of-stream")
	ckpt := fs.String("checkpoint", "", "write a checkpoint file after the stream drains")
	resume := fs.String("resume", "", "restore from this checkpoint and resume the stream at its epoch cursor")
	gcEvery := fs.Duration("gc-every", 0, "vacuum version chains at this interval (0 disables)")
	httpAddr := fs.String("http", "", "serve /metrics /healthz /varz /debug/pprof on this address (empty disables)")
	spoolDir := fs.String("spool-dir", "", "durable epoch spool directory; with -ckpt-dir, runs the crash-recovery supervisor")
	ckptDir := fs.String("ckpt-dir", "", "atomic checkpoint directory for the recovery supervisor")
	ckptEvery := fs.Int("ckpt-every", 0, "supervisor: checkpoint after this many applied epochs (0 disables)")
	ckptInterval := fs.Duration("ckpt-interval", 30*time.Second, "supervisor: checkpoint at least this often while epochs arrive (0 disables)")
	syncPol := fs.String("sync", "always", "spool sync policy: always, interval, never")
	applyProfiles := contentionProfileFlags(fs)
	_ = fs.Parse(args)
	applyProfiles()

	gen, plan, err := workloadPlan(*name)
	if err != nil {
		return err
	}

	opts := htap.Options{Workers: *workers, Pipeline: *pipeline}

	if *spoolDir != "" || *ckptDir != "" {
		if *spoolDir == "" || *ckptDir == "" {
			return fmt.Errorf("recovery mode needs both -spool-dir and -ckpt-dir")
		}
		return runSupervised(supervisedConfig{
			listen: *listen, algo: *algo, name: *name,
			gen: gen, plan: plan, opts: opts,
			spoolDir: *spoolDir, ckptDir: *ckptDir,
			ckptEvery: *ckptEvery, ckptInterval: *ckptInterval,
			syncPolicy: *syncPol, once: *once, gcEvery: *gcEvery,
			httpAddr: *httpAddr,
		})
	}
	var node *htap.Node
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return err
		}
		n, m, err := htap.RestoreNode(f, htap.Kind(*algo), plan, opts)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume from %s: %w", *resume, err)
		}
		node = n
		fmt.Printf("resumed from %s: next epoch %d, visible ts %d\n",
			*resume, m.NextEpochSeq(), m.LastCommitTS)
	} else {
		node, err = htap.NewNode(htap.Kind(*algo), plan, opts)
		if err != nil {
			return err
		}
	}
	defer node.Close()

	if *gcEvery > 0 {
		stop := node.StartVacuumLoop(*gcEvery, 0)
		defer stop()
	}

	m := ship.NewMetrics(metrics.Default)
	rcv, err := node.ShipReceiver(ship.ReceiverConfig{
		Schema:  ship.SchemaHash(*name, workload.TableIDs(gen.Tables())),
		Metrics: m,
		Drain:   func() error { node.Drain(); return node.Err() },
	})
	if err != nil {
		return err
	}

	closeHTTP, err := serveHTTP(*httpAddr, obsrv.Options{
		Health: node.HealthSource(metrics.Default, func() bool {
			return metrics.Default.Gauge("ship_connected").Load() != 0
		}),
	})
	if err != nil {
		return err
	}
	defer closeHTTP()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("backup (%s, %d workers, pipeline %d) listening on %s, cursor %d\n",
		*algo, *workers, *pipeline, *listen, rcv.Cursor())

	stopProgress := startProgress(func() {
		st := rcv.Stats()
		fmt.Printf("  %8d txns received, cursor %d, visible ts %d | %s | %s\n",
			st.Txns, st.Cursor, node.VisibleTS(), metrics.Default.Line("ship_"),
			metrics.Default.Line("replay_"))
	})
	defer stopProgress()

	start := time.Now()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		done, err := rcv.Serve(conn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
		}
		if done && *once {
			break
		}
	}
	node.Drain()
	if err := node.Err(); err != nil {
		return err
	}
	st := rcv.Stats()
	elapsed := time.Since(start)
	fmt.Printf("replayed %d txns (%d entries, %d duplicates dropped) in %v — %.0f txns/s, final visible ts %d\n",
		st.Txns, st.Entries, st.Duplicates, elapsed.Round(time.Millisecond),
		float64(st.Txns)/elapsed.Seconds(), node.VisibleTS())

	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		if err != nil {
			return err
		}
		defer f.Close()
		meta, err := node.Checkpoint(f)
		if err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s (epoch %d, ts %d)\n", *ckpt, meta.LastEpochSeq, meta.LastCommitTS)
	}
	return nil
}

// supervisedConfig carries the backup flags into the recovery mode.
type supervisedConfig struct {
	listen, algo, name string
	gen                workload.Generator
	plan               *grouping.Plan
	opts               htap.Options
	spoolDir, ckptDir  string
	ckptEvery          int
	ckptInterval       time.Duration
	syncPolicy         string
	once               bool
	gcEvery            time.Duration
	httpAddr           string
}

// runSupervised is the crash-tolerant backup: every received epoch is
// spooled durably before it is acknowledged, checkpoints are cut
// atomically on a schedule, and the replay supervisor restores
// checkpoint + spool tail on startup and rebuilds the node on fatal
// replay errors instead of exiting.
func runSupervised(c supervisedConfig) error {
	policy, err := recovery.ParseSyncPolicy(c.syncPolicy)
	if err != nil {
		return err
	}
	spool, err := recovery.OpenSpool(recovery.SpoolConfig{Dir: c.spoolDir, Policy: policy})
	if err != nil {
		return err
	}
	defer spool.Close()
	mgr, err := recovery.OpenManager(c.ckptDir, 0, nil)
	if err != nil {
		return err
	}
	sup, err := recovery.NewSupervisor(recovery.Config{
		Kind:                  htap.Kind(c.algo),
		Plan:                  c.plan,
		Node:                  c.opts,
		Spool:                 spool,
		Checkpoints:           mgr,
		CheckpointEveryEpochs: c.ckptEvery,
		CheckpointInterval:    c.ckptInterval,
	})
	if err != nil {
		return err
	}
	if err := sup.Start(); err != nil {
		return err
	}
	defer sup.Close()

	if c.gcEvery > 0 {
		if node := sup.Node(); node != nil {
			stop := node.StartVacuumLoop(c.gcEvery, 0)
			defer stop()
		}
	}

	m := ship.NewMetrics(metrics.Default)
	rcv, err := ship.NewReceiver(ship.ReceiverConfig{
		Schema:  ship.SchemaHash(c.name, workload.TableIDs(c.gen.Tables())),
		Resume:  sup.NextSeq(),
		Applier: sup,
		Metrics: m,
		Drain:   sup.Checkpoint,
	})
	if err != nil {
		return err
	}

	closeHTTP, err := serveHTTP(c.httpAddr, obsrv.Options{
		Health: func() obsrv.Health {
			h := sup.Health()
			h.ShipConnected = metrics.Default.Gauge("ship_connected").Load() != 0
			return h
		},
	})
	if err != nil {
		return err
	}
	defer closeHTTP()

	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("supervised backup (%s) listening on %s, cursor %d, spool %s (sync=%s), checkpoints %s\n",
		c.algo, c.listen, rcv.Cursor(), c.spoolDir, policy, c.ckptDir)

	stopProgress := startProgress(func() {
		st := rcv.Stats()
		sst := sup.Stats()
		fmt.Printf("  %8d txns received, cursor %d, state %s, restarts %d, quarantined %d | %s\n",
			st.Txns, st.Cursor, sst.State, sst.Restarts, sst.Quarantined,
			metrics.Default.Line("recovery_"))
	})
	defer stopProgress()

	start := time.Now()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		done, err := rcv.Serve(conn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
		}
		if sup.State() == recovery.StateFatal {
			return fmt.Errorf("supervisor fatal: %s", sup.Stats().LastErr)
		}
		if done && c.once {
			break
		}
	}
	st := rcv.Stats()
	sst := sup.Stats()
	elapsed := time.Since(start)
	fmt.Printf("replayed %d txns (%d entries, %d duplicates dropped) in %v — state %s, restarts %d, quarantined %d\n",
		st.Txns, st.Entries, st.Duplicates, elapsed.Round(time.Millisecond),
		sst.State, sst.Restarts, sst.Quarantined)
	return nil
}

// startProgress runs fn once a second until the returned stop function
// is called.
func startProgress(fn func()) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fn()
			}
		}
	}()
	return func() { close(done) }
}
