package main

import (
	"errors"
	"strings"
	"testing"
)

// TestFlagValidation drives every mode's parse function through its
// invalid flag combinations and asserts each one fails up front with a
// usage error — no socket opened, no epoch generated, no mid-run panic
// — plus a valid combination per mode that must parse clean.
func TestFlagValidation(t *testing.T) {
	parse := map[string]func([]string) error{
		"primary": func(a []string) error { _, err := parsePrimaryFlags(a); return err },
		"backup":  func(a []string) error { _, err := parseBackupFlags(a); return err },
		"cluster": func(a []string) error { _, err := parseClusterFlags(a); return err },
		"route":   func(a []string) error { _, err := parseRouteFlags(a); return err },
	}

	cases := []struct {
		name    string
		mode    string
		args    []string
		wantErr string // "" = must parse clean; otherwise a substring of the usage error
	}{
		// primary
		{"primary defaults", "primary", nil, ""},
		{"primary empty connect", "primary", []string{"-connect", ""}, "-connect must not be empty"},
		{"primary unknown workload", "primary", []string{"-workload", "ycsb"}, `unknown workload "ycsb"`},
		{"primary zero txns", "primary", []string{"-txns", "0"}, "-txns and -epoch must be positive"},
		{"primary negative epoch", "primary", []string{"-epoch", "-1"}, "-txns and -epoch must be positive"},
		{"primary zero window", "primary", []string{"-window", "0"}, "-window must be positive"},
		{"primary zero retries", "primary", []string{"-retries", "0"}, "-retries must be positive"},
		{"primary negative rate", "primary", []string{"-rate", "-1"}, "must not be negative"},
		{"primary negative hb", "primary", []string{"-hb", "-1s"}, "must not be negative"},
		{"primary compress", "primary", []string{"-compress"}, ""},

		// backup
		{"backup defaults", "backup", nil, ""},
		{"backup supervised", "backup", []string{"-spool-dir", "s", "-ckpt-dir", "c"}, ""},
		{"backup empty listen", "backup", []string{"-listen", ""}, "-listen must not be empty"},
		{"backup unknown algo", "backup", []string{"-algo", "nope"}, `unknown algo "nope"`},
		{"backup unknown workload", "backup", []string{"-workload", "nope"}, `unknown workload "nope"`},
		{"backup zero workers", "backup", []string{"-workers", "0"}, "-workers must be positive"},
		{"backup negative pipeline", "backup", []string{"-pipeline", "-1"}, "-pipeline must not be negative"},
		{"backup negative gc-every", "backup", []string{"-gc-every", "-1s"}, "must not be negative"},
		{"backup spool without ckpt dir", "backup", []string{"-spool-dir", "s"}, "both -spool-dir and -ckpt-dir"},
		{"backup ckpt dir without spool", "backup", []string{"-ckpt-dir", "c"}, "both -spool-dir and -ckpt-dir"},
		{"backup resume under supervisor", "backup",
			[]string{"-spool-dir", "s", "-ckpt-dir", "c", "-resume", "x.ckpt"}, "-resume conflicts"},
		{"backup checkpoint under supervisor", "backup",
			[]string{"-spool-dir", "s", "-ckpt-dir", "c", "-checkpoint", "x.ckpt"}, "-checkpoint conflicts"},
		{"backup bad sync policy", "backup", []string{"-spool-dir", "s", "-ckpt-dir", "c", "-sync", "maybe"}, "maybe"},
		{"backup supervised compress", "backup", []string{"-spool-dir", "s", "-ckpt-dir", "c", "-compress"}, ""},

		// cluster
		{"cluster three peers", "cluster", []string{"-connect", "a:1,b:2,c:3"}, ""},
		{"cluster missing connect", "cluster", nil, "-connect is required"},
		{"cluster empty address", "cluster", []string{"-connect", "a:1,,b:2"}, "empty address"},
		{"cluster duplicate address", "cluster", []string{"-connect", "a:1,a:1"}, `duplicate address "a:1"`},
		{"cluster unknown workload", "cluster", []string{"-connect", "a:1", "-workload", "nope"}, `unknown workload "nope"`},
		{"cluster zero epoch", "cluster", []string{"-connect", "a:1", "-epoch", "0"}, "-txns and -epoch must be positive"},
		{"cluster zero window", "cluster", []string{"-connect", "a:1", "-window", "0"}, "-window and -retries must be positive"},
		{"cluster negative max-queue", "cluster", []string{"-connect", "a:1", "-max-queue", "-1"}, "must not be negative"},
		{"cluster compress", "cluster", []string{"-connect", "a:1,b:2", "-compress"}, ""},

		// route
		{"route defaults", "route", nil, ""},
		{"route zero replicas", "route", []string{"-replicas", "0"}, "-replicas must be in 1..64"},
		{"route too many replicas", "route", []string{"-replicas", "65"}, "-replicas must be in 1..64"},
		{"route unknown algo", "route", []string{"-algo", "nope"}, `unknown algo "nope"`},
		{"route zero txns", "route", []string{"-txns", "0"}, "-txns and -epoch must be positive"},
		{"route zero workers", "route", []string{"-workers", "0"}, "-workers must be positive"},
		{"route negative delay", "route", []string{"-delay", "-1ms"}, "must not be negative"},
		{"route negative stale", "route", []string{"-stale", "-1"}, "must not be negative"},
		{"route zero concurrency", "route", []string{"-concurrency", "0"}, "-concurrency must be positive"},
		{"route compress", "route", []string{"-compress"}, ""},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parse[tc.mode](tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want clean parse, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want usage error containing %q, got nil", tc.wantErr)
			}
			var ue *usageError
			if !errors.As(err, &ue) {
				t.Fatalf("want *usageError, got %T: %v", err, err)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestFlagParseErrorIsNotUsageError: a malformed flag value fails in
// flag.Parse itself — still up front, but not tagged as ours.
func TestFlagParseErrorIsNotUsageError(t *testing.T) {
	_, err := parsePrimaryFlags([]string{"-txns", "many"})
	if err == nil {
		t.Fatal("want parse error for non-numeric -txns")
	}
	var ue *usageError
	if errors.As(err, &ue) {
		t.Fatalf("flag package errors must not be usageError, got %v", err)
	}
}
