package main

import (
	"fmt"
	"net"
	"time"

	"aets/internal/cluster"
	"aets/internal/htap"
	"aets/internal/metrics"
	"aets/internal/obsrv"
	"aets/internal/primary"
	"aets/internal/ship"
	"aets/internal/workload"
)

// runCluster is the fan-out primary: one generated epoch stream shipped
// to every -connect replica simultaneously, each over its own
// independent link (cursor, window, reconnect), so a slow or dead
// replica never stalls its siblings. Per-link progress is published as
// ship_* metrics labelled peer="<addr>".
func runCluster(args []string) error {
	c, err := parseClusterFlags(args)
	if err != nil {
		return err
	}
	c.applyProfiles()

	gen, plan, err := workloadPlan(c.workload)
	if err != nil {
		return err
	}
	schema := ship.SchemaHash(c.workload, workload.TableIDs(gen.Tables()))

	// -snapshot mirrors the stream into a local node so the fan-out can
	// cut a checkpoint covering everything sent so far: the state source
	// for re-basing replicas too stale to resume, and (with
	// -digest-every) the reference state for anti-entropy digests.
	var mirror *htap.Node
	if c.snapshot {
		mirror, err = htap.NewNode(htap.Kind("aets"), plan, htap.Options{Workers: 2, Columnar: c.columnar})
		if err != nil {
			return err
		}
		defer mirror.Close()
		if c.compactEvery > 0 {
			stop := mirror.StartCompactLoop(c.compactEvery, 0)
			defer stop()
		}
	}

	peers := make([]cluster.Peer, 0, len(c.connects))
	for _, addr := range c.connects {
		addr := addr
		peers = append(peers, cluster.Peer{ID: addr, Sender: ship.SenderConfig{
			Dial:           func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Schema:         schema,
			Window:         c.window,
			HeartbeatEvery: c.hb,
			MaxAttempts:    c.retries,
			Compress:       c.compress,
		}})
	}
	fcfg := cluster.FanoutConfig{
		Peers:    peers,
		Registry: metrics.Default,
		MaxQueue: c.maxQueue,
	}
	if mirror != nil {
		fcfg.Snapshot = &htap.NodeSnapshotSource{N: mirror}
		if c.digestEvery > 0 {
			fcfg.DigestEvery = c.digestEvery
			fcfg.Digest = mirror.AntiEntropyDigest
		}
	}
	fan, err := cluster.NewFanout(fcfg)
	if err != nil {
		return err
	}

	closeHTTP, err := serveHTTP(c.httpAddr, obsrv.Options{
		Health: func() obsrv.Health {
			live := fan.Live()
			h := obsrv.Health{Healthy: live > 0, Status: "ok",
				ShipConnected: live == len(c.connects)}
			if live < len(c.connects) {
				h.Status = fmt.Sprintf("%d/%d peers live", live, len(c.connects))
			}
			if live == 0 {
				h.Status = "all peers down"
			}
			return h
		},
	})
	if err != nil {
		return err
	}
	defer closeHTTP()

	stopProgress := startProgress(func() {
		for _, st := range fan.Stats() {
			status := "ok"
			if st.Err != nil {
				status = st.Err.Error()
			}
			fmt.Printf("  %-24s sent %6d acked %6d queued %5d inflight %3d reconnects %d [%s]\n",
				st.ID, st.Sent, st.Acked, st.Queued, st.Inflight, st.Reconnects, status)
		}
	})
	defer stopProgress()

	p := primary.New(gen, c.seed)
	encs := p.GenerateEncoded(c.txns, c.epochSize)
	start := time.Now()
	for i := range encs {
		if mirror != nil {
			// The mirror applies before the fan-out ships, so a snapshot
			// cut at any instant covers every epoch already offered.
			if err := mirror.Feed(&encs[i]); err != nil {
				return err
			}
		}
		if err := fan.Send(&encs[i]); err != nil {
			return err
		}
		if c.rate > 0 {
			time.Sleep(time.Second / time.Duration(c.rate))
		}
	}
	err = fan.Close()
	elapsed := time.Since(start).Round(time.Millisecond)
	for _, st := range fan.Stats() {
		status := "complete"
		if st.Err != nil {
			status = st.Err.Error()
		}
		ratio := ""
		if st.BytesRaw > 0 && st.BytesWire != st.BytesRaw {
			ratio = fmt.Sprintf(", wire/raw %.3f", float64(st.BytesWire)/float64(st.BytesRaw))
		}
		snaps := ""
		if st.Snapshots > 0 {
			snaps = fmt.Sprintf(", snapshots %d", st.Snapshots)
		}
		fmt.Printf("peer %-24s acked %d/%d, reconnects %d%s%s — %s\n",
			st.ID, st.Acked, len(encs), st.Reconnects, ratio, snaps, status)
	}
	fmt.Printf("fanned out %d epochs (%d txns) to %d replicas in %v\n",
		len(encs), c.txns, len(c.connects), elapsed)
	return err
}
