package main

import (
	"fmt"
	"os"
	"strings"

	"aets/internal/predictor"
	"aets/internal/workload"
)

// predictorSetting sizes the Table III/IV/Fig 14 evaluations.
type predictorSetting struct {
	trainSlots int
	evalSlots  int
	epochs     int
	hidden     int
}

func setting(o opts) predictorSetting {
	if o.Quick {
		// Note: the -quick DTGM is undertrained; expect degraded MAPE and
		// possibly inverted orderings. The full setting reproduces the
		// paper's ranking.
		return predictorSetting{trainSlots: 600, evalSlots: 135, epochs: 10, hidden: 16}
	}
	return predictorSetting{trainSlots: 600, evalSlots: 360, epochs: 16, hidden: 48}
}

// runTable3 compares HA, ARIMA, QB5000 and DTGM by MAPE on the BusTracker
// rate series. Each model (including DTGM's forecast head) is fitted per
// horizon, matching the paper's protocol. Because a full DTGM training
// takes minutes per horizon, the AETS_TABLE3_HORIZONS environment variable
// (comma-separated, e.g. "15" or "30,60") restricts the run so the three
// horizons can be collected in separate invocations.
func runTable3(o opts) error {
	s := setting(o)
	bt := workload.NewBusTracker()
	series, _ := bt.RateSeries(s.trainSlots + s.evalSlots)
	horizons := parseHorizons(os.Getenv("AETS_TABLE3_HORIZONS"))

	models := []struct {
		name string
		mk   func(h int) predictor.Predictor
	}{
		{"HA", func(int) predictor.Predictor { return predictor.NewHA() }},
		{"ARIMA", func(int) predictor.Predictor { return predictor.NewARIMA() }},
		{"QB5000", func(int) predictor.Predictor { return predictor.NewQB5000() }},
		{"DTGM", func(h int) predictor.Predictor {
			cfg := predictor.DefaultDTGMConfig(h)
			cfg.Hidden = s.hidden
			cfg.Epochs = s.epochs
			return predictor.NewDTGM(bt.AccessGraph(), cfg)
		}},
	}

	fmt.Printf("%-8s", "model")
	for _, h := range horizons {
		fmt.Printf(" %10s", fmt.Sprintf("%d mins", h))
	}
	fmt.Println("   (MAPE)")
	for _, m := range models {
		fmt.Printf("%-8s", m.name)
		for _, h := range horizons {
			mape, err := predictor.Evaluate(m.mk(h), series, s.trainSlots, 60, h)
			if err != nil {
				return fmt.Errorf("%s@%d: %w", m.name, h, err)
			}
			fmt.Printf(" %9.2f%%", mape*100)
		}
		fmt.Println()
	}
	return nil
}

// parseHorizons reads a comma-separated horizon list, defaulting to the
// paper's 15/30/60.
func parseHorizons(env string) []int {
	if env == "" {
		return []int{15, 30, 60}
	}
	var out []int
	for _, part := range strings.Split(env, ",") {
		var h int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &h); err == nil && h > 0 {
			out = append(out, h)
		}
	}
	if len(out) == 0 {
		return []int{15, 30, 60}
	}
	return out
}

// runTable4 is the GCN ablation: DTGM with and without the graph
// component at the 15-minute horizon.
func runTable4(o opts) error {
	s := setting(o)
	bt := workload.NewBusTracker()
	series, _ := bt.RateSeries(s.trainSlots + s.evalSlots)

	fmt.Printf("%-10s %10s\n", "model", "MAPE")
	for _, useGCN := range []bool{false, true} {
		cfg := predictor.DefaultDTGMConfig(15)
		cfg.Hidden = s.hidden
		cfg.Epochs = 12 // the ablation compares variants relatively
		cfg.UseGCN = useGCN
		d := predictor.NewDTGM(bt.AccessGraph(), cfg)
		mape, err := predictor.Evaluate(d, series, s.trainSlots, 60, 15)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %9.2f%%\n", d.Name(), mape*100)
	}
	return nil
}

// runFig14 sweeps the hidden-layer dimension (the paper's optimum is 48).
func runFig14(o opts) error {
	s := setting(o)
	bt := workload.NewBusTracker()
	series, _ := bt.RateSeries(s.trainSlots + s.evalSlots)
	dims := []int{8, 16, 24, 32, 48, 64}
	epochs := 8 // the sweep compares dims relatively; fewer epochs suffice
	if o.Quick {
		dims = []int{8, 16, 48}
		epochs = s.epochs
	}
	if env := os.Getenv("AETS_FIG14_DIMS"); env != "" {
		dims = parseHorizons(env) // same comma-separated integer syntax
	}
	fmt.Printf("%-8s %10s\n", "hidden", "MAPE")
	for _, dim := range dims {
		cfg := predictor.DefaultDTGMConfig(15)
		cfg.Hidden = dim
		cfg.Epochs = epochs
		d := predictor.NewDTGM(bt.AccessGraph(), cfg)
		mape, err := predictor.Evaluate(d, series, s.trainSlots, 60, 15)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %9.2f%%\n", dim, mape*100)
	}
	return nil
}
