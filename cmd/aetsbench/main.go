// Command aetsbench regenerates every table and figure of the paper's
// evaluation (§VI). Each subcommand prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured for each.
//
// Usage:
//
//	aetsbench <experiment> [flags]
//
// Experiments: table1 fig7 fig8 fig9 fig10 fig11 table2 fig12 fig13
// table3 table4 fig14 all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// opts are the shared experiment knobs.
type opts struct {
	Txns    int
	Epoch   int
	Workers int
	Quick   bool
	Seed    int64
}

type experiment struct {
	name string
	desc string
	run  func(o opts) error
}

var experiments = []experiment{
	{"table1", "Table I: hot-table log-entry ratio per benchmark", runTable1},
	{"fig7", "Fig 7: BusTracker table access rates over time", runFig7},
	{"fig8", "Fig 8: TPC-C throughput / replay time / visibility delay", runFig8},
	{"fig9", "Fig 9: BusTracker throughput / replay time / visibility delay", runFig9},
	{"fig10", "Fig 10: CH-benCHmark per-query visibility delay", runFig10},
	{"fig11", "Fig 11: normalised replay throughput vs thread count", runFig11},
	{"table2", "Table II: dispatch/replay/commit time breakdown", runTable2},
	{"fig12", "Fig 12: epoch size vs average visibility delay", runFig12},
	{"fig13", "Fig 13: adaptive thread allocation policies", runFig13},
	{"table3", "Table III: predictor MAPE at 15/30/60 min", runTable3},
	{"table4", "Table IV: DTGM vs w/o-gcn ablation", runTable4},
	{"fig14", "Fig 14: DTGM hidden-dimension sweep", runFig14},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]

	fs := flag.NewFlagSet(name, flag.ExitOnError)
	var o opts
	fs.IntVar(&o.Txns, "txns", 0, "transactions to replay (0 = experiment default)")
	fs.IntVar(&o.Epoch, "epoch", 2048, "epoch size in transactions")
	fs.IntVar(&o.Workers, "workers", 32, "replay worker budget T")
	fs.BoolVar(&o.Quick, "quick", false, "reduced sizes for a fast smoke run")
	fs.Int64Var(&o.Seed, "seed", 1, "workload seed")
	_ = fs.Parse(os.Args[2:])

	if name == "all" {
		for _, e := range experiments {
			fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
			start := time.Now()
			if err := e.run(o); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Printf("(%s in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
		return
	}
	for _, e := range experiments {
		if e.name == name {
			if err := e.run(o); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aetsbench <experiment> [-txns N] [-epoch N] [-workers N] [-quick] [-seed N]")
	fmt.Fprintln(os.Stderr, "\nexperiments:")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all      run everything in sequence")
}
