package main

import (
	"fmt"

	"aets/internal/grouping"
	"aets/internal/primary"
	"aets/internal/sim"
	"aets/internal/wal"
	"aets/internal/workload"
)

// runFig11 reproduces the multi-core scalability comparison on the
// calibrated discrete-event simulator: normalised replay throughput
// (divided by ATR's single-thread throughput) for 1–64 threads.
func runFig11(o opts) error {
	txns := o.Txns
	if txns == 0 {
		txns = 30000
		if o.Quick {
			txns = 4000
		}
	}
	gen := workload.NewTPCC(20)
	p := primary.New(gen, o.Seed)
	raw := p.GenerateTxns(txns)
	rates := map[wal.TableID]float64{
		workload.TPCCDistrict: 1000, workload.TPCCStock: 1000,
		workload.TPCCCustomer: 1000, workload.TPCCOrder: 1000,
		workload.TPCCOrderLine: 2000,
	}
	plan := grouping.Build(rates, workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
	tr := sim.BuildTrace(raw, plan, o.Epoch)

	// The fixed default constants keep the curve shape stable; Calibrate
	// re-measures machine speed but is noisy on loaded single-core hosts.
	costs := sim.DefaultCosts()
	meas := sim.Calibrate()
	fmt.Printf("model costs (ns/op): meta=%.0f full=%.0f lookup=%.0f install=%.0f  (this host measured: %.0f/%.0f/%.0f/%.0f)\n",
		costs.ParseMeta, costs.ParseFull, costs.Lookup, costs.Install,
		meas.ParseMeta, meas.ParseFull, meas.Lookup, meas.Install)

	base := sim.SimulateATR(tr, 1, costs).TxnsPerSec()
	if base == 0 {
		base = 1
	}
	threads := []int{1, 2, 4, 8, 16, 32, 64}
	fmt.Printf("%-8s %10s %10s %10s %10s   (normalised by ATR@1)\n",
		"threads", "AETS", "ATR", "C5", "TPLR")
	for _, n := range threads {
		fmt.Printf("%-8d %10.2f %10.2f %10.2f %10.2f\n", n,
			sim.SimulateAETS(tr, n, costs).TxnsPerSec()/base,
			sim.SimulateATR(tr, n, costs).TxnsPerSec()/base,
			sim.SimulateC5(tr, n, costs).TxnsPerSec()/base,
			sim.SimulateTPLR(tr, n, costs).TxnsPerSec()/base)
	}
	return nil
}
