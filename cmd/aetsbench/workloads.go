package main

import (
	"fmt"

	"aets/internal/workload"
)

// runTable1 reproduces Table I: written-table counts, analytical
// footprints and the hot-entry ratio of each benchmark.
func runTable1(o opts) error {
	n := 50000
	if o.Quick {
		n = 5000
	}
	type row struct {
		gen      workload.Generator
		paperPct float64
	}
	rows := []row{
		{workload.NewTPCC(20), 90.98},
		{workload.NewSEATS(), 38.08},
		{workload.NewCHBench(20), 93.72},
		{workload.NewBusTracker(), 37.12},
	}
	fmt.Printf("%-14s %8s %8s %10s %10s %10s\n",
		"benchmark", "num(T)", "num(A∩T)", "ratio", "paper", "delta")
	for _, r := range rows {
		ratio := workload.HotEntryRatio(r.gen, n, o.Seed) * 100
		tables := r.gen.Tables()
		fmt.Printf("%-14s %8d %8d %9.2f%% %9.2f%% %+9.2fpp\n",
			r.gen.Name(), len(tables), len(workload.HotTables(tables)),
			ratio, r.paperPct, ratio-r.paperPct)
	}
	return nil
}

// runFig7 prints the access-rate series of three typical BusTracker tables
// (the Fig 7 curves).
func runFig7(o opts) error {
	bt := workload.NewBusTracker()
	slots := 240
	if o.Quick {
		slots = 60
	}
	series, ids := bt.RateSeries(slots)
	names := make(map[int]string)
	for _, t := range bt.Tables() {
		for j, id := range ids {
			if t.ID == id {
				names[j] = t.Name
			}
		}
	}
	// Three representative tables: the first, one mid-rate, one shifted.
	cols := []int{0, 4, 5}
	fmt.Printf("%-6s", "slot")
	for _, c := range cols {
		fmt.Printf(" %14s", names[c])
	}
	fmt.Println()
	for s := 0; s < slots; s += slots / 30 {
		fmt.Printf("%-6d", s)
		for _, c := range cols {
			fmt.Printf(" %14.1f", series[s][c])
		}
		fmt.Println()
	}
	return nil
}
