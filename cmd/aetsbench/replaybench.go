package main

import (
	"fmt"
	"time"

	"aets/internal/htap"
	"aets/internal/workload"
)

// printComparison renders the Fig 8/9-style three panels: normalised
// replay throughput (ATR = 1.0), normalised replay time (AETS cold = 1.0),
// and mean visibility delay.
func printComparison(results []*htap.RunResult) {
	var atrTPS float64
	var aetsCold time.Duration
	for _, r := range results {
		if r.Algorithm == "ATR" {
			atrTPS = r.Throughput.TxnsPerSec()
		}
		if r.Algorithm == "AETS" {
			aetsCold = r.ColdReplayTime
		}
	}
	if atrTPS == 0 {
		atrTPS = 1
	}
	if aetsCold == 0 {
		aetsCold = 1
	}
	fmt.Printf("%-8s %12s %12s %12s %12s %14s %14s\n",
		"algo", "txns/s", "norm-tput", "hot-time", "total-time", "norm-time(hot)", "vis-delay(us)")
	for _, r := range results {
		tps := r.Throughput.TxnsPerSec()
		fmt.Printf("%-8s %12.0f %12.2f %12v %12v %14.2f %14.1f\n",
			r.Algorithm, tps, tps/atrTPS,
			r.HotReplayTime.Round(time.Millisecond),
			r.ColdReplayTime.Round(time.Millisecond),
			float64(r.HotReplayTime)/float64(aetsCold),
			r.Visibility.Mean())
	}
}

// runFig8 compares AETS/ATR/C5/TPLR on TPC-C with the paper's grouping.
func runFig8(o opts) error {
	txns := o.Txns
	if txns == 0 {
		txns = 60000
		if o.Quick {
			txns = 6000
		}
	}
	exp := htap.Experiment{
		NewGen:     func() workload.Generator { return workload.NewTPCC(20) },
		Rates:      htap.TPCCRates(1000),
		Txns:       txns,
		EpochSize:  o.Epoch,
		Workers:    o.Workers,
		Queries:    txns / 20,
		QueryEvery: 200 * time.Microsecond,
		Seed:       o.Seed,
	}
	return runComparison(exp, htap.Kinds)
}

// runComparison runs two passes per algorithm over identical inputs: an
// unpaced pass for throughput and replay time, and a pass paced at 35% of
// the calibrated AETS rate for visibility delays — low enough that every
// algorithm sustains the stream (the paper's real-time replication regime,
// where delay differences come from replay ordering rather than from an
// overloaded backup).
func runComparison(exp htap.Experiment, kinds []htap.Kind) error {
	rate, err := htap.CalibrateRate(exp, 0.35)
	if err != nil {
		return err
	}
	tput, err := htap.RunAll(kinds, exp)
	if err != nil {
		return err
	}
	paced := exp
	paced.PrimaryRate = rate
	vis, err := htap.RunAll(kinds, paced)
	if err != nil {
		return err
	}
	for i := range tput {
		tput[i].Visibility = vis[i].Visibility
		tput[i].PerQuery = vis[i].PerQuery
	}
	printComparison(tput)
	return nil
}

// runFig9 is the same comparison on BusTracker (37% hot entries): the
// hot-table replay time drops far below the total for AETS.
func runFig9(o opts) error {
	txns := o.Txns
	if txns == 0 {
		txns = 40000
		if o.Quick {
			txns = 4000
		}
	}
	bt := workload.NewBusTracker()
	exp := htap.Experiment{
		NewGen:     func() workload.Generator { return workload.NewBusTracker() },
		Rates:      bt.Rates(0),
		Txns:       txns,
		EpochSize:  o.Epoch,
		Workers:    o.Workers,
		Queries:    txns / 20,
		QueryEvery: 200 * time.Microsecond,
		Seed:       o.Seed,
	}
	return runComparison(exp, htap.Kinds)
}

// runFig10 reports the per-query visibility delay of the 22 CH-benCHmark
// queries under AETS, ATR and C5 (each table its own group).
func runFig10(o opts) error {
	txns := o.Txns
	if txns == 0 {
		txns = 40000
		if o.Quick {
			txns = 4000
		}
	}
	exp := htap.Experiment{
		NewGen:     func() workload.Generator { return workload.NewCHBench(20) },
		PerTable:   true,
		Txns:       txns,
		EpochSize:  o.Epoch,
		Workers:    o.Workers,
		Queries:    txns / 10,
		QueryEvery: 100 * time.Microsecond,
		Seed:       o.Seed,
	}
	exp.Rates = htap.CHRates(workload.NewCHBench(20))

	kinds := []htap.Kind{htap.KindAETS, htap.KindATR, htap.KindC5}
	rate, err := htap.CalibrateRate(exp, 0.35)
	if err != nil {
		return err
	}
	exp.PrimaryRate = rate
	results, err := htap.RunAll(kinds, exp)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s", "query")
	for _, r := range results {
		fmt.Printf(" %12s", r.Algorithm+"(us)")
	}
	fmt.Println()
	queries := workload.NewCHBench(20).Queries()
	for _, q := range queries {
		fmt.Printf("%-6s", q.Name)
		for _, r := range results {
			rec := r.PerQuery[q.Name]
			if rec == nil || rec.Count() == 0 {
				fmt.Printf(" %12s", "-")
				continue
			}
			fmt.Printf(" %12.1f", rec.Mean())
		}
		fmt.Println()
	}
	fmt.Printf("%-6s", "mean")
	for _, r := range results {
		fmt.Printf(" %12.1f", r.Visibility.Mean())
	}
	fmt.Println()
	return nil
}

// runTable2 reports the dispatch/replay/commit time breakdown of AETS on
// the three workloads.
func runTable2(o opts) error {
	txns := o.Txns
	if txns == 0 {
		txns = 30000
		if o.Quick {
			txns = 3000
		}
	}
	bt := workload.NewBusTracker()
	rows := []struct {
		name string
		exp  htap.Experiment
	}{
		{"TPC-C", htap.Experiment{
			NewGen: func() workload.Generator { return workload.NewTPCC(20) },
			Rates:  htap.TPCCRates(1000),
		}},
		{"BusTracker", htap.Experiment{
			NewGen: func() workload.Generator { return workload.NewBusTracker() },
			Rates:  bt.Rates(0),
		}},
		{"CH-benCHmark", htap.Experiment{
			NewGen:   func() workload.Generator { return workload.NewCHBench(20) },
			Rates:    htap.CHRates(workload.NewCHBench(20)),
			PerTable: true,
		}},
	}
	fmt.Printf("%-14s %10s %10s %10s\n", "dataset", "dispatch", "replay", "commit")
	for _, row := range rows {
		exp := row.exp
		exp.Txns = txns
		exp.EpochSize = o.Epoch
		exp.Workers = o.Workers
		exp.Seed = o.Seed
		res, err := htap.Run(htap.KindAETS, exp)
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		d, r, c := res.Breakdown.Shares()
		fmt.Printf("%-14s %9.2f%% %9.2f%% %9.2f%%\n", row.name, d*100, r*100, c*100)
	}
	return nil
}

// runFig12 sweeps the epoch size and reports the mean visibility delay on
// TPC-C.
func runFig12(o opts) error {
	txns := o.Txns
	if txns == 0 {
		txns = 30000
		if o.Quick {
			txns = 4000
		}
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}
	if o.Quick {
		sizes = []int{64, 512, 2048, 8192}
	}
	base := htap.Experiment{
		NewGen:    func() workload.Generator { return workload.NewTPCC(20) },
		Rates:     htap.TPCCRates(1000),
		Txns:      txns,
		EpochSize: 2048,
		Workers:   o.Workers,
		Seed:      o.Seed,
	}
	rate, err := htap.CalibrateRate(base, 0.7)
	if err != nil {
		return err
	}
	// An epoch assembles for size/rate seconds on the primary before it can
	// ship, so a freshly committed row is on average epoch/(2·rate) old
	// before replay even starts; the visibility wait comes on top. The
	// paper's Fig 12 U-shape is the sum: small epochs pay per-epoch replay
	// overhead, large epochs pay assembly staleness.
	fmt.Printf("%-10s %14s %14s %16s\n", "epoch", "vis-delay(us)", "assembly(us)", "freshness(us)")
	for _, size := range sizes {
		exp := base
		exp.EpochSize = size
		exp.Queries = txns / 20
		exp.QueryEvery = 200 * time.Microsecond
		exp.PrimaryRate = rate
		res, err := htap.Run(htap.KindAETS, exp)
		if err != nil {
			return err
		}
		assembly := float64(size) / (2 * rate) * 1e6
		fmt.Printf("%-10d %14.1f %14.1f %16.1f\n",
			size, res.Visibility.Mean(), assembly, res.Visibility.Mean()+assembly)
	}
	return nil
}

// runFig13 compares the three thread-allocation policies on BusTracker.
func runFig13(o opts) error {
	cfg := htap.AdaptiveConfig{
		Slots: 25, WarmupSlots: 5, TxnsPerSlot: 4096, EpochSize: o.Epoch,
		Workers: o.Workers, QueriesPerSlot: 64, Seed: o.Seed,
	}
	if o.Quick {
		cfg.Slots, cfg.WarmupSlots, cfg.TxnsPerSlot = 5, 1, 512
		cfg.QueriesPerSlot = 16
		cfg.TrainSlots = 100
		cfg.DTGMEpochs = 2
		cfg.DTGMHidden = 8
	}
	strategies := []htap.Strategy{htap.StrategyDTGM, htap.StrategyHA, htap.StrategyNOAC}
	results := make([]*htap.AdaptiveResult, 0, len(strategies))
	for _, s := range strategies {
		r, err := htap.RunAdaptive(s, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", s, err)
		}
		results = append(results, r)
	}
	fmt.Printf("%-8s", "minute")
	for _, r := range results {
		fmt.Printf(" %12s", string(r.Strategy))
	}
	fmt.Println("   (mean visibility delay, us)")
	for slot := 0; slot < len(results[0].PerSlotMeanUS); slot++ {
		fmt.Printf("%-8d", slot+1)
		for _, r := range results {
			fmt.Printf(" %12.1f", r.PerSlotMeanUS[slot])
		}
		fmt.Println()
	}
	fmt.Printf("%-8s", "mean")
	for _, r := range results {
		fmt.Printf(" %12.1f", r.Mean())
	}
	fmt.Println()
	return nil
}
