GO ?= go

.PHONY: all build vet test race fuzz chaos chaos-cluster smoke bench-smoke ci bench-json bench-diff

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the replication transport,
# the replay engine, the epoch batcher, the sharded memtable index
# (including TestScanParallelStress — ScanParallel racing GetOrCreate and
# Vacuum), the query admission path, and the cluster router/fan-out (its
# chaos e2e runs separately under chaos-cluster).
race:
	$(GO) test -race ./internal/ship/... ./internal/replay/... ./internal/epoch/... ./internal/memtable/... ./internal/query/...
	$(GO) test -race -skip 'TestClusterChaos' ./internal/cluster/

# Short fuzz smoke: the wire-format decoder, the memtable scan variants
# (Scan/ScanAny/ScanParallel vs a flat-map reference), the columnar
# segment decoder (hostile length prefixes must fail cleanly), and the
# columnar planner differential (segment + delta reads vs a row-wise twin
# across random freeze schedules).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=10s ./internal/ship/
	$(GO) test -run='^$$' -fuzz=FuzzScanVariants -fuzztime=10s ./internal/memtable/
	$(GO) test -run='^$$' -fuzz=FuzzSegmentDecode -fuzztime=10s ./internal/colstore/
	$(GO) test -run='^$$' -fuzz=FuzzColumnarScan -fuzztime=10s ./internal/query/

# Chaos e2e in short mode under the race detector: repeated hard
# restarts at random points under transport faults plus an injected
# spool bit-flip must converge to reference-equal state, and a poison
# epoch must be quarantined instead of crash-looping the replica.
# The second leg reruns the restart chaos with negotiated flate
# compression on every link, so compressed frames cross the faulty wire
# and land in the spool as received.
chaos:
	$(GO) test -race -short -run 'TestChaos' -count=1 ./internal/recovery/
	AETS_CHAOS_COMPRESS=1 $(GO) test -race -short -run 'TestChaosRestartsConvergeToReference' -count=1 ./internal/recovery/

# Cluster chaos e2e in short mode under the race detector: a 3-replica
# fan-out where replicas hard-crash mid-stream and recover through the
# supervisor while routed queries stay reference-equal and satisfied
# queries admit without blocking. The second leg runs a mixed-capability
# fleet — one replica pinned to wire v1, the rest negotiating flate — to
# prove one stale peer cannot disable compression for its siblings.
# The third leg drives snapshot catch-up and anti-entropy: a bounded
# divergence buffer sheds under a crashed replica (counted, not
# terminal), the replica rejoins through a wire snapshot with zero
# operator action, and an injected at-rest bit flip is caught by an
# epoch-boundary digest and repaired through the same snapshot path.
chaos-cluster:
	$(GO) test -race -short -run 'TestClusterChaos' -count=1 ./internal/cluster/
	AETS_CHAOS_COMPRESS=1 $(GO) test -race -short -run 'TestClusterChaos' -count=1 ./internal/cluster/
	AETS_CHAOS_SNAPSHOT=1 $(GO) test -race -short -run 'TestClusterChaos' -count=1 ./internal/cluster/

# Boot `replayd backup -http`, scrape /metrics and /healthz, fail on
# non-200 responses or missing replay_* series.
smoke:
	sh scripts/smoke-obsrv.sh

# Every benchmark must at least run: one iteration each, so a bench that
# rots (panics, fails its own sanity checks) breaks CI instead of the
# next person's perf investigation.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The memtable benchmark set archived in BENCH_memtable.json and diffed
# by bench-diff: the index scaling curve plus every scan variant.
MEMTABLE_BENCH = BenchmarkGetOrCreateParallel|BenchmarkScanMerged|BenchmarkScanCascade|BenchmarkScanAny|BenchmarkScanParallel

# The ship benchmark set archived in BENCH_ship.json: the compression
# path per workload (with its wire/raw ratio metric) and the raw-encode
# baseline it is diffed against.
SHIP_BENCH = BenchmarkShipCompress|BenchmarkShipEncodeRaw

# The query benchmark set archived in BENCH_query.json: columnar scans
# and aggregates over a majority-frozen table, plus the row-wise twins
# they are measured against.
QUERY_BENCH = BenchmarkColumnarScan|BenchmarkColumnarAggregate|BenchmarkRowScan|BenchmarkRowAggregate

# Serial-vs-pipelined replay throughput and memtable index benchmarks,
# archived as JSON for diffing.
bench-json:
	$(GO) test -run='^$$' -bench=BenchmarkReplayPipeline -benchmem ./internal/replay/ \
		| $(GO) run ./tools/benchjson > BENCH_replay.json
	$(GO) test -run='^$$' -bench='$(MEMTABLE_BENCH)' -benchmem ./internal/memtable/ \
		| $(GO) run ./tools/benchjson > BENCH_memtable.json
	$(GO) test -run='^$$' -bench=BenchmarkRouteQuery -benchmem ./internal/cluster/ \
		| $(GO) run ./tools/benchjson > BENCH_cluster.json
	$(GO) test -run='^$$' -bench='$(SHIP_BENCH)' -benchmem ./internal/ship/ \
		| $(GO) run ./tools/benchjson > BENCH_ship.json
	$(GO) test -run='^$$' -bench='$(QUERY_BENCH)' -benchmem ./internal/query/ \
		| $(GO) run ./tools/benchjson > BENCH_query.json

# Re-run the archived benchmarks and print per-benchmark deltas against
# the checked-in BENCH_*.json — old → new ns/op, B/op and allocs/op with
# relative change. Informational: regressions are flagged inline, not
# failed, because shared CI hosts are too noisy for a hard perf gate.
bench-diff:
	$(GO) test -run='^$$' -bench=BenchmarkReplayPipeline -benchmem ./internal/replay/ \
		| $(GO) run ./tools/benchjson -diff BENCH_replay.json
	$(GO) test -run='^$$' -bench='$(MEMTABLE_BENCH)' -benchmem ./internal/memtable/ \
		| $(GO) run ./tools/benchjson -diff BENCH_memtable.json
	$(GO) test -run='^$$' -bench=BenchmarkRouteQuery -benchmem ./internal/cluster/ \
		| $(GO) run ./tools/benchjson -diff BENCH_cluster.json
	$(GO) test -run='^$$' -bench='$(SHIP_BENCH)' -benchmem ./internal/ship/ \
		| $(GO) run ./tools/benchjson -diff BENCH_ship.json
	$(GO) test -run='^$$' -bench='$(QUERY_BENCH)' -benchmem ./internal/query/ \
		| $(GO) run ./tools/benchjson -diff BENCH_query.json

ci: build vet test race chaos chaos-cluster bench-smoke smoke
