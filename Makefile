GO ?= go

.PHONY: all build vet test race fuzz chaos smoke ci bench-json

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the replication transport,
# the replay engine, and the epoch batcher.
race:
	$(GO) test -race ./internal/ship/... ./internal/replay/... ./internal/epoch/...

# Short fuzz smoke of the wire-format decoder.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=10s ./internal/ship/

# Chaos e2e in short mode under the race detector: repeated hard
# restarts at random points under transport faults plus an injected
# spool bit-flip must converge to reference-equal state, and a poison
# epoch must be quarantined instead of crash-looping the replica.
chaos:
	$(GO) test -race -short -run 'TestChaos' -count=1 ./internal/recovery/

# Boot `replayd backup -http`, scrape /metrics and /healthz, fail on
# non-200 responses or missing replay_* series.
smoke:
	sh scripts/smoke-obsrv.sh

# Serial-vs-pipelined replay throughput, archived as JSON for diffing.
bench-json:
	$(GO) test -run='^$$' -bench=BenchmarkReplayPipeline -benchmem ./internal/replay/ \
		| $(GO) run ./tools/benchjson > BENCH_replay.json

ci: build vet test race chaos smoke
