GO ?= go

.PHONY: all build vet test race fuzz ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the replication transport,
# the replay engine, and the epoch batcher.
race:
	$(GO) test -race ./internal/ship/... ./internal/replay/... ./internal/epoch/...

# Short fuzz smoke of the wire-format decoder.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=10s ./internal/ship/

ci: build vet test race
