// Package aets_test holds the testing.B benchmark harness: one benchmark
// per paper table/figure, mirroring the cmd/aetsbench subcommands at sizes
// suitable for `go test -bench`. The bench names index into EXPERIMENTS.md.
package aets_test

import (
	"fmt"
	"testing"
	"time"

	"aets/internal/grouping"
	"aets/internal/htap"
	"aets/internal/predictor"
	"aets/internal/primary"
	"aets/internal/sim"
	"aets/internal/workload"
)

const (
	benchTxns  = 8000
	benchEpoch = 1024
)

// --- Table I -------------------------------------------------------------

func BenchmarkTable1HotRatio(b *testing.B) {
	gens := []func() workload.Generator{
		func() workload.Generator { return workload.NewTPCC(20) },
		func() workload.Generator { return workload.NewSEATS() },
		func() workload.Generator { return workload.NewCHBench(20) },
		func() workload.Generator { return workload.NewBusTracker() },
	}
	for _, mk := range gens {
		g := mk()
		b.Run(g.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ratio := workload.HotEntryRatio(mk(), 5000, 1)
				b.ReportMetric(ratio*100, "hot%")
			}
		})
	}
}

// --- Fig 8 / Fig 9: replay comparison ------------------------------------

func benchReplay(b *testing.B, kind htap.Kind, exp htap.Experiment) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := htap.Run(kind, exp)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Throughput.TxnsPerSec(), "txns/s")
		b.ReportMetric(res.Visibility.Mean(), "visdelay-us")
		b.ReportMetric(float64(res.HotReplayTime.Microseconds()), "hot-us")
	}
}

func tpccExperiment(queries int) htap.Experiment {
	return htap.Experiment{
		NewGen:     func() workload.Generator { return workload.NewTPCC(20) },
		Rates:      htap.TPCCRates(1000),
		Txns:       benchTxns,
		EpochSize:  benchEpoch,
		Workers:    8,
		Queries:    queries,
		QueryEvery: 200 * time.Microsecond,
		Seed:       1,
	}
}

func BenchmarkFig8TPCC(b *testing.B) {
	for _, kind := range htap.Kinds {
		b.Run(string(kind), func(b *testing.B) {
			benchReplay(b, kind, tpccExperiment(benchTxns/40))
		})
	}
}

func BenchmarkFig9BusTracker(b *testing.B) {
	bt := workload.NewBusTracker()
	exp := htap.Experiment{
		NewGen:     func() workload.Generator { return workload.NewBusTracker() },
		Rates:      bt.Rates(0),
		Txns:       benchTxns,
		EpochSize:  benchEpoch,
		Workers:    8,
		Queries:    benchTxns / 40,
		QueryEvery: 200 * time.Microsecond,
		Seed:       1,
	}
	for _, kind := range htap.Kinds {
		b.Run(string(kind), func(b *testing.B) {
			benchReplay(b, kind, exp)
		})
	}
}

// --- Fig 10: CH-benCHmark per-query delay --------------------------------

func BenchmarkFig10CHBench(b *testing.B) {
	exp := htap.Experiment{
		NewGen:     func() workload.Generator { return workload.NewCHBench(20) },
		Rates:      htap.CHRates(workload.NewCHBench(20)),
		PerTable:   true,
		Txns:       benchTxns,
		EpochSize:  benchEpoch,
		Workers:    8,
		Queries:    benchTxns / 20,
		QueryEvery: 150 * time.Microsecond,
		Seed:       1,
	}
	for _, kind := range []htap.Kind{htap.KindAETS, htap.KindATR, htap.KindC5} {
		b.Run(string(kind), func(b *testing.B) {
			benchReplay(b, kind, exp)
		})
	}
}

// --- Fig 11: scalability on the calibrated simulator ---------------------

func BenchmarkFig11Scalability(b *testing.B) {
	gen := workload.NewTPCC(20)
	p := primary.New(gen, 1)
	raw := p.GenerateTxns(benchTxns)
	plan := grouping.Build(htap.TPCCRates(1000), workload.TableIDs(gen.Tables()),
		grouping.Options{Eps: 0.05, MinPts: 2})
	tr := sim.BuildTrace(raw, plan, benchEpoch)
	costs := sim.DefaultCosts()

	sims := map[string]func(*sim.Trace, int, sim.Costs) sim.Result{
		"AETS": sim.SimulateAETS, "ATR": sim.SimulateATR,
		"C5": sim.SimulateC5, "TPLR": sim.SimulateTPLR,
	}
	for _, threads := range []int{1, 16, 64} {
		for name, f := range sims {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := f(tr, threads, costs)
					b.ReportMetric(r.TxnsPerSec(), "sim-txns/s")
				}
			})
		}
	}
}

// --- Table II: time breakdown ---------------------------------------------

func BenchmarkTable2Breakdown(b *testing.B) {
	exp := tpccExperiment(0)
	for i := 0; i < b.N; i++ {
		res, err := htap.Run(htap.KindAETS, exp)
		if err != nil {
			b.Fatal(err)
		}
		d, r, c := res.Breakdown.Shares()
		b.ReportMetric(d*100, "dispatch%")
		b.ReportMetric(r*100, "replay%")
		b.ReportMetric(c*100, "commit%")
	}
}

// --- Fig 12: epoch size sweep ----------------------------------------------

func BenchmarkFig12EpochSize(b *testing.B) {
	for _, size := range []int{64, 512, 2048, 8192} {
		b.Run(fmt.Sprintf("epoch=%d", size), func(b *testing.B) {
			exp := tpccExperiment(benchTxns / 40)
			exp.EpochSize = size
			for i := 0; i < b.N; i++ {
				res, err := htap.Run(htap.KindAETS, exp)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Visibility.Mean(), "visdelay-us")
			}
		})
	}
}

// --- Fig 13: adaptive allocation -------------------------------------------

func BenchmarkFig13Adaptive(b *testing.B) {
	cfg := htap.AdaptiveConfig{
		Slots: 3, WarmupSlots: 1, TxnsPerSlot: 1024, EpochSize: 512,
		Workers: 8, QueriesPerSlot: 32, TrainSlots: 120,
		DTGMHidden: 8, DTGMEpochs: 2, Seed: 5,
	}
	for _, s := range []htap.Strategy{htap.StrategyDTGM, htap.StrategyHA, htap.StrategyNOAC} {
		b.Run(string(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := htap.RunAdaptive(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Mean(), "visdelay-us")
			}
		})
	}
}

// --- Tables III/IV and Fig 14: predictors -----------------------------------

func predictorSeries() ([][]float64, [][]float64) {
	bt := workload.NewBusTracker()
	series, _ := bt.RateSeries(420)
	return series, bt.AccessGraph()
}

func BenchmarkTable3Predictors(b *testing.B) {
	series, adj := predictorSeries()
	models := map[string]func() predictor.Predictor{
		"HA":          func() predictor.Predictor { return predictor.NewHA() },
		"ARIMA":       func() predictor.Predictor { return predictor.NewARIMA() },
		"HoltWinters": func() predictor.Predictor { return predictor.NewHoltWinters(workload.BusDayPeriod) },
		"QB5000":      func() predictor.Predictor { q := predictor.NewQB5000(); q.Epochs = 3; return q },
		"DTGM": func() predictor.Predictor {
			cfg := predictor.DefaultDTGMConfig(15)
			cfg.Hidden, cfg.Epochs = 12, 4
			return predictor.NewDTGM(adj, cfg)
		},
	}
	for name, mk := range models {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mape, err := predictor.Evaluate(mk(), series, 300, 60, 15)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(mape*100, "MAPE%")
			}
		})
	}
}

func BenchmarkTable4GCNAblation(b *testing.B) {
	series, adj := predictorSeries()
	for _, useGCN := range []bool{true, false} {
		name := "DTGM"
		if !useGCN {
			name = "DTGM-wo-gcn"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := predictor.DefaultDTGMConfig(15)
				cfg.Hidden, cfg.Epochs, cfg.UseGCN = 12, 4, useGCN
				mape, err := predictor.Evaluate(predictor.NewDTGM(adj, cfg), series, 300, 60, 15)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(mape*100, "MAPE%")
			}
		})
	}
}

func BenchmarkFig14HiddenDim(b *testing.B) {
	series, adj := predictorSeries()
	for _, dim := range []int{8, 16, 48} {
		b.Run(fmt.Sprintf("hidden=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := predictor.DefaultDTGMConfig(15)
				cfg.Hidden, cfg.Epochs = dim, 4
				mape, err := predictor.Evaluate(predictor.NewDTGM(adj, cfg), series, 300, 60, 15)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(mape*100, "MAPE%")
			}
		})
	}
}

// --- Ablations beyond the paper's figures ----------------------------------

// BenchmarkAblationTwoStage isolates the two-stage scheduler: grouped
// replay with and without hot-first staging.
func BenchmarkAblationTwoStage(b *testing.B) {
	for _, kind := range []htap.Kind{htap.KindAETS, htap.KindTPLR} {
		b.Run(string(kind), func(b *testing.B) {
			benchReplay(b, kind, tpccExperiment(benchTxns/40))
		})
	}
}
